// Module base class: parameter registration, recursive traversal,
// train/eval mode and checkpoint (de)serialization.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace wa::nn {

/// Base class for trainable network components.
///
/// Subclasses register their leaf parameters and child modules in their
/// constructor; the base class then provides recursive parameter collection
/// (for optimizers and checkpoints) and training-mode propagation (for
/// batch-norm statistics and quantization observers).
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual ag::Variable forward(const ag::Variable& input) = 0;

  /// All trainable parameters, depth first.
  std::vector<ag::Variable> parameters() const;
  /// Parameters keyed by dotted path, e.g. "stage1.block0.conv1.weight".
  std::map<std::string, ag::Variable> named_parameters(const std::string& prefix = "") const;

  /// Total trainable scalar count.
  std::int64_t parameter_count() const;

  void set_training(bool training);
  bool training() const { return training_; }

  /// Copy values from a checkpoint map (missing keys throw, shape mismatch
  /// throws; extra keys in the map are ignored so partially-matching models
  /// — e.g. the Fig. 6 direct->winograd adaptation — can reuse weights).
  void load_state(const std::map<std::string, Tensor>& state, const std::string& prefix = "");
  /// Copy values for keys present in BOTH the map and this model; returns the
  /// number of tensors loaded. This is how a pre-trained direct-convolution
  /// model seeds a Winograd-aware one (Fig. 6 adaptation): conv/bn/fc weights
  /// transfer, the Cook-Toom-initialised transforms and observers stay fresh.
  std::size_t load_state_intersect(const std::map<std::string, Tensor>& state,
                                   const std::string& prefix = "");
  /// Snapshot all parameter values.
  std::map<std::string, Tensor> state_dict(const std::string& prefix = "") const;

  /// Immediate children in registration order. Used by deployment compilers
  /// that walk a trained model to extract layers and frozen scales.
  const std::vector<std::pair<std::string, std::shared_ptr<Module>>>& named_children() const {
    return children_;
  }

 protected:
  ag::Variable register_parameter(const std::string& name, Tensor init);
  /// Register a non-trainable buffer-like parameter (e.g. static Winograd
  /// transforms): saved/loaded with the state but excluded from parameters().
  ag::Variable register_buffer(const std::string& name, Tensor init);
  template <typename M, typename... Args>
  std::shared_ptr<M> register_module(const std::string& name, Args&&... args) {
    auto mod = std::make_shared<M>(std::forward<Args>(args)...);
    children_.emplace_back(name, mod);
    return mod;
  }
  void register_child(const std::string& name, std::shared_ptr<Module> child) {
    children_.emplace_back(name, std::move(child));
  }

  /// Hook for subclasses that need to react to train/eval switches
  /// (batch-norm, quantization observers).
  virtual void on_set_training(bool) {}

 private:
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, ag::Variable>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

/// Run modules in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  void append(const std::string& name, std::shared_ptr<Module> m) {
    register_child(name, m);
    steps_.push_back(std::move(m));
  }
  ag::Variable forward(const ag::Variable& input) override {
    ag::Variable x = input;
    for (auto& s : steps_) x = s->forward(x);
    return x;
  }
  std::size_t size() const { return steps_.size(); }

 private:
  std::vector<std::shared_ptr<Module>> steps_;
};

}  // namespace wa::nn
