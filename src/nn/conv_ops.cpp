#include "nn/conv_ops.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace wa::nn {

using backend::ConvGeometry;

Tensor row2im_accumulate(const Tensor& rows, const ConvGeometry& g) {
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
  if (rows.size(0) != g.batch * oh * ow || rows.size(1) != patch) {
    throw std::invalid_argument("row2im_accumulate: rows shape mismatch");
  }
  Tensor out(Shape{g.batch, g.in_channels, g.height, g.width});
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        const float* src = rows.raw() + ((n * oh + i) * ow + j) * patch;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
            const std::int64_t ii = i + fi - g.pad;
            if (ii < 0 || ii >= g.height) {
              src += g.kernel;
              continue;
            }
            for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
              const std::int64_t jj = j + fj - g.pad;
              if (jj >= 0 && jj < g.width) out(n, c, ii, jj) += *src;
              ++src;
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

/// [N,K,oh,ow] -> [N*oh*ow, K] (the layout the GEMM produced/consumes).
Tensor nchw_to_rows(const Tensor& t) {
  const std::int64_t n = t.size(0), k = t.size(1), oh = t.size(2), ow = t.size(3);
  Tensor rows(Shape{n * oh * ow, k});
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t c = 0; c < k; ++c)
      for (std::int64_t i = 0; i < oh; ++i)
        for (std::int64_t j = 0; j < ow; ++j) rows((b * oh + i) * ow + j, c) = t(b, c, i, j);
  return rows;
}

Tensor slice_channels(const Tensor& x, std::int64_t begin, std::int64_t end) {
  const std::int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  Tensor out(Shape{n, end - begin, h, w});
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t c = begin; c < end; ++c)
      for (std::int64_t i = 0; i < h; ++i)
        for (std::int64_t j = 0; j < w; ++j) out(b, c - begin, i, j) = x(b, c, i, j);
  return out;
}

void add_into_channels(Tensor& dst, const Tensor& src, std::int64_t begin) {
  const std::int64_t n = src.size(0), c = src.size(1), h = src.size(2), w = src.size(3);
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t cc = 0; cc < c; ++cc)
      for (std::int64_t i = 0; i < h; ++i)
        for (std::int64_t j = 0; j < w; ++j) dst(b, begin + cc, i, j) += src(b, cc, i, j);
}

}  // namespace

ag::Variable conv2d_im2row(const ag::Variable& input, const ag::Variable& weight,
                           const ag::Variable& bias, const ConvGeometry& geom) {
  Tensor out = backend::im2row_conv(input.value(), weight.value(), geom);
  const bool has_bias = bias.defined();
  if (has_bias) {
    const std::int64_t n = out.size(0), k = out.size(1), oh = out.size(2), ow = out.size(3);
    for (std::int64_t b = 0; b < n; ++b)
      for (std::int64_t c = 0; c < k; ++c) {
        const float bv = bias.value().at(c);
        for (std::int64_t i = 0; i < oh; ++i)
          for (std::int64_t j = 0; j < ow; ++j) out(b, c, i, j) += bv;
      }
  }

  auto xn = input.node();
  auto wn = weight.node();
  auto bn = has_bias ? bias.node() : nullptr;
  std::vector<ag::Variable> parents{input, weight};
  if (has_bias) parents.push_back(bias);

  return ag::apply_op("conv2d_im2row", std::move(parents), std::move(out),
                      [xn, wn, bn, geom](ag::Node& node) {
    const Tensor& dy = node.grad;
    const std::int64_t cpg = geom.in_channels / geom.groups;
    const std::int64_t kpg = geom.out_channels / geom.groups;
    const std::int64_t oh = geom.out_height(), ow = geom.out_width();

    if (bn && bn->requires_grad) {
      Tensor db(Shape{geom.out_channels});
      for (std::int64_t b = 0; b < geom.batch; ++b)
        for (std::int64_t c = 0; c < geom.out_channels; ++c)
          for (std::int64_t i = 0; i < oh; ++i)
            for (std::int64_t j = 0; j < ow; ++j) db.at(c) += dy(b, c, i, j);
      bn->accum_grad(db);
    }

    const bool need_dx = xn->requires_grad;
    const bool need_dw = wn->requires_grad;
    if (!need_dx && !need_dw) return;

    Tensor dx = need_dx ? Tensor::zeros(xn->value.shape()) : Tensor();
    Tensor dw = need_dw ? Tensor::zeros(wn->value.shape()) : Tensor();

    for (std::int64_t grp = 0; grp < geom.groups; ++grp) {
      ConvGeometry sub = geom;
      sub.in_channels = cpg;
      sub.out_channels = kpg;
      sub.groups = 1;
      const std::int64_t patch = cpg * geom.kernel * geom.kernel;

      // dY for this group's output channels, in rows layout [NP, kpg].
      Tensor dy_slice = slice_channels(dy, grp * kpg, (grp + 1) * kpg);
      Tensor dy_rows = nchw_to_rows(dy_slice);

      const Tensor x_slice = geom.groups == 1 ? xn->value
                                              : slice_channels(xn->value, grp * cpg, (grp + 1) * cpg);

      if (need_dw) {
        // dW [kpg, patch] = dY_rows^T [kpg, NP] x rows [NP, patch].
        const Tensor rows = backend::im2row_lower(x_slice, sub);
        Tensor dw_mat(Shape{kpg, patch});
        gemm_f32(true, false, kpg, patch, rows.size(0), 1.F, dy_rows.raw(), rows.raw(), 0.F,
                 dw_mat.raw());
        float* dst = dw.raw() + grp * kpg * patch;
        for (std::int64_t i = 0; i < kpg * patch; ++i) dst[i] += dw_mat.at(i);
      }
      if (need_dx) {
        // dRows [NP, patch] = dY_rows [NP, kpg] x W_mat [kpg, patch].
        const Tensor w_mat = wn->value.slice0(grp * kpg, (grp + 1) * kpg).reshape({kpg, patch});
        Tensor drows(Shape{dy_rows.size(0), patch});
        gemm_f32(false, false, dy_rows.size(0), patch, kpg, 1.F, dy_rows.raw(), w_mat.raw(), 0.F,
                 drows.raw());
        const Tensor dx_slice = row2im_accumulate(drows, sub);
        if (geom.groups == 1) {
          dx += dx_slice;
        } else {
          add_into_channels(dx, dx_slice, grp * cpg);
        }
      }
    }
    if (need_dx) xn->accum_grad(dx);
    if (need_dw) wn->accum_grad(dw);
  });
}

ag::Variable max_pool2d(const ag::Variable& input, std::int64_t kernel, std::int64_t stride) {
  const Tensor& x = input.value();
  if (x.dim() != 4) throw std::invalid_argument("max_pool2d: expects NCHW");
  const std::int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  const std::int64_t oh = (h - kernel) / stride + 1, ow = (w - kernel) / stride + 1;
  if (oh < 1 || ow < 1) throw std::invalid_argument("max_pool2d: output would be empty");

  Tensor out(Shape{n, c, oh, ow});
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(n * c * oh * ow));
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t fi = 0; fi < kernel; ++fi) {
            for (std::int64_t fj = 0; fj < kernel; ++fj) {
              const std::int64_t ii = i * stride + fi, jj = j * stride + fj;
              const float v = x(b, ch, ii, jj);
              if (v > best) {
                best = v;
                best_idx = ((b * c + ch) * h + ii) * w + jj;
              }
            }
          }
          out(b, ch, i, j) = best;
          (*argmax)[static_cast<std::size_t>(((b * c + ch) * oh + i) * ow + j)] = best_idx;
        }
      }
    }
  }

  auto xn = input.node();
  return ag::apply_op("max_pool2d", {input}, std::move(out), [xn, argmax](ag::Node& node) {
    if (!xn->requires_grad) return;
    Tensor dx = Tensor::zeros(xn->value.shape());
    auto g = node.grad.data();
    for (std::size_t i = 0; i < g.size(); ++i) dx.at((*argmax)[i]) += g[i];
    xn->accum_grad(dx);
  });
}

ag::Variable global_avg_pool(const ag::Variable& input) {
  const Tensor& x = input.value();
  if (x.dim() != 4) throw std::invalid_argument("global_avg_pool: expects NCHW");
  const std::int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  Tensor out(Shape{n, c});
  const float inv = 1.F / static_cast<float>(h * w);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0;
      for (std::int64_t i = 0; i < h; ++i)
        for (std::int64_t j = 0; j < w; ++j) acc += x(b, ch, i, j);
      out(b, ch) = static_cast<float>(acc) * inv;
    }
  }
  auto xn = input.node();
  return ag::apply_op("global_avg_pool", {input}, std::move(out), [xn, h, w, inv](ag::Node& node) {
    if (!xn->requires_grad) return;
    Tensor dx(xn->value.shape());
    const std::int64_t n = dx.size(0), c = dx.size(1);
    for (std::int64_t b = 0; b < n; ++b)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float g = node.grad(b, ch) * inv;
        for (std::int64_t i = 0; i < h; ++i)
          for (std::int64_t j = 0; j < w; ++j) dx(b, ch, i, j) = g;
      }
    xn->accum_grad(dx);
  });
}

ag::Variable batch_norm2d(const ag::Variable& input, const ag::Variable& gamma,
                          const ag::Variable& beta, BatchNormState& state, bool training) {
  const Tensor& x = input.value();
  if (x.dim() != 4) throw std::invalid_argument("batch_norm2d: expects NCHW");
  const std::int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  if (gamma.numel() != c || beta.numel() != c) {
    throw std::invalid_argument("batch_norm2d: gamma/beta must have C elements");
  }
  const std::int64_t m = n * h * w;  // reduction size per channel
  const float eps = state.eps;

  auto mean = std::make_shared<Tensor>(Shape{c});
  auto inv_std = std::make_shared<Tensor>(Shape{c});
  if (training) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0;
      for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t i = 0; i < h; ++i)
          for (std::int64_t j = 0; j < w; ++j) acc += x(b, ch, i, j);
      const double mu = acc / static_cast<double>(m);
      double var_acc = 0;
      for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t i = 0; i < h; ++i)
          for (std::int64_t j = 0; j < w; ++j) {
            const double d = x(b, ch, i, j) - mu;
            var_acc += d * d;
          }
      const double var = var_acc / static_cast<double>(m);
      mean->at(ch) = static_cast<float>(mu);
      inv_std->at(ch) = static_cast<float>(1.0 / std::sqrt(var + eps));
      state.running_mean.at(ch) =
          (1.F - state.momentum) * state.running_mean.at(ch) + state.momentum * static_cast<float>(mu);
      state.running_var.at(ch) =
          (1.F - state.momentum) * state.running_var.at(ch) + state.momentum * static_cast<float>(var);
    }
  } else {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      mean->at(ch) = state.running_mean.at(ch);
      inv_std->at(ch) = 1.F / std::sqrt(state.running_var.at(ch) + eps);
    }
  }

  Tensor out(x.shape());
  auto xhat = std::make_shared<Tensor>(x.shape());
  for (std::int64_t b = 0; b < n; ++b)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float mu = mean->at(ch), is = inv_std->at(ch);
      const float ga = gamma.value().at(ch), be = beta.value().at(ch);
      for (std::int64_t i = 0; i < h; ++i)
        for (std::int64_t j = 0; j < w; ++j) {
          const float xh = (x(b, ch, i, j) - mu) * is;
          (*xhat)(b, ch, i, j) = xh;
          out(b, ch, i, j) = ga * xh + be;
        }
    }

  auto xn = input.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return ag::apply_op(
      "batch_norm2d", {input, gamma, beta}, std::move(out),
      [xn, gn, bn, xhat, inv_std, training, n, c, h, w, m](ag::Node& node) {
        const Tensor& dy = node.grad;
        // Per-channel reductions shared by all gradients.
        Tensor sum_dy(Shape{c}), sum_dy_xhat(Shape{c});
        for (std::int64_t b = 0; b < n; ++b)
          for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t i = 0; i < h; ++i)
              for (std::int64_t j = 0; j < w; ++j) {
                sum_dy.at(ch) += dy(b, ch, i, j);
                sum_dy_xhat.at(ch) += dy(b, ch, i, j) * (*xhat)(b, ch, i, j);
              }
        if (bn->requires_grad) bn->accum_grad(sum_dy);
        if (gn->requires_grad) gn->accum_grad(sum_dy_xhat);
        if (!xn->requires_grad) return;

        Tensor dx(xn->value.shape());
        const float inv_m = 1.F / static_cast<float>(m);
        for (std::int64_t b = 0; b < n; ++b)
          for (std::int64_t ch = 0; ch < c; ++ch) {
            const float ga = gn->value.at(ch), is = inv_std->at(ch);
            for (std::int64_t i = 0; i < h; ++i)
              for (std::int64_t j = 0; j < w; ++j) {
                const float g = dy(b, ch, i, j);
                if (training) {
                  // d/dx of batch-normalized output (standard closed form).
                  dx(b, ch, i, j) =
                      ga * is *
                      (g - inv_m * sum_dy.at(ch) -
                       inv_m * (*xhat)(b, ch, i, j) * sum_dy_xhat.at(ch));
                } else {
                  dx(b, ch, i, j) = ga * is * g;
                }
              }
          }
        xn->accum_grad(dx);
      });
}

}  // namespace wa::nn
