// Convolution algorithm selection and layer options.
//
// This enum is the wiNAS search space (paper Fig. 3): each 3x3 convolution is
// implemented with im2row (lossless, GEMM-lowered) or a Winograd
// configuration F2/F4/F6 trading latency against numerical error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "quant/quant.hpp"

namespace wa::nn {

enum class ConvAlgo {
  kIm2row,     // GEMM lowering, row-major patches (the paper's main baseline)
  kIm2col,     // GEMM lowering, column-major patches
  kDirect,     // naive direct convolution (reference)
  kWinograd2,  // F(2x2, rxr)
  kWinograd4,  // F(4x4, rxr)
  kWinograd6,  // F(6x6, rxr)
};

constexpr bool is_winograd(ConvAlgo a) {
  return a == ConvAlgo::kWinograd2 || a == ConvAlgo::kWinograd4 || a == ConvAlgo::kWinograd6;
}

/// Output tile size m of a Winograd algo (throws for non-Winograd).
int winograd_m(ConvAlgo a);

std::string to_string(ConvAlgo a);

/// Full configuration of one convolution layer.
struct Conv2dOptions {
  std::int64_t in_channels = 1;
  std::int64_t out_channels = 1;
  std::int64_t kernel = 3;
  std::int64_t pad = 1;
  std::int64_t groups = 1;
  bool bias = false;  // the evaluated CNNs put batch-norm after every conv

  ConvAlgo algo = ConvAlgo::kIm2row;
  /// Bit-width of weights, activations and (for Winograd) every intermediate
  /// Qx stage — the paper quantizes them all to the same level. Set
  /// qspec.scheme = kAffine for asymmetric activation quantization (the
  /// extension the paper's discussion recommends); weights stay symmetric.
  quant::QuantSpec qspec{32};
  /// Learn the Winograd transforms G/Bᵀ/Aᵀ (the paper's "-flex" suffix).
  bool flex_transforms = false;
  /// Quantize weights with one scale per output channel instead of one per
  /// layer (Jacob et al. 2018; suggested by the paper's discussion section).
  bool per_channel_weights = false;
  /// Per-stage bit-width overrides for the Winograd Qx stages ("quantization
  /// diversity", §3.2). Unset stages use qspec. Ignored by non-Winograd
  /// algorithms.
  std::optional<quant::QuantSpec> qspec_u, qspec_v, qspec_m, qspec_y;
  /// Taps per scale group for the Winograd transform-domain stages (U, V, M).
  /// 0 keeps the legacy per-tensor scalar scale. t*t is one group — scalar-
  /// equivalent ranges, but trained and deployed through the vector path;
  /// 1 is fully tap-wise (Andri et al.), the setting that recovers int8
  /// accuracy at F4/F6; intermediate values are Pan et al.-style groups.
  /// Symmetric schemes only (the int8 deploy path is symmetric); ignored by
  /// non-Winograd algorithms. Y stays per-tensor — it is pixel-domain.
  std::int64_t tap_group_size = 0;
};

}  // namespace wa::nn
