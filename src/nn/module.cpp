#include "nn/module.hpp"

#include <stdexcept>

namespace wa::nn {

ag::Variable Module::register_parameter(const std::string& name, Tensor init) {
  ag::Variable v(std::move(init), /*requires_grad=*/true, name);
  params_.emplace_back(name, v);
  return v;
}

ag::Variable Module::register_buffer(const std::string& name, Tensor init) {
  ag::Variable v(std::move(init), /*requires_grad=*/false, name);
  buffers_.emplace_back(name, v);
  return v;
}

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, p] : params_) {
    if (p.requires_grad()) out.push_back(p);
  }
  for (const auto& [name, c] : children_) {
    auto sub = c->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::map<std::string, ag::Variable> Module::named_parameters(const std::string& prefix) const {
  std::map<std::string, ag::Variable> out;
  for (const auto& [name, p] : params_) out.emplace(prefix + name, p);
  for (const auto& [name, b] : buffers_) out.emplace(prefix + name, b);
  for (const auto& [name, c] : children_) {
    auto sub = c->named_parameters(prefix + name + ".");
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::set_training(bool training) {
  training_ = training;
  on_set_training(training);
  for (auto& [name, c] : children_) c->set_training(training);
}

void Module::load_state(const std::map<std::string, Tensor>& state, const std::string& prefix) {
  for (auto& [name, p] : named_parameters(prefix)) {
    const auto it = state.find(name);
    if (it == state.end()) {
      throw std::runtime_error("load_state: missing key '" + name + "'");
    }
    check_same_shape(p.value().shape(), it->second.shape(), ("load_state: " + name).c_str());
    p.value() = it->second;
  }
}

std::size_t Module::load_state_intersect(const std::map<std::string, Tensor>& state,
                                          const std::string& prefix) {
  std::size_t loaded = 0;
  for (auto& [name, p] : named_parameters(prefix)) {
    const auto it = state.find(name);
    if (it == state.end()) continue;
    if (p.value().shape() != it->second.shape()) continue;
    p.value() = it->second;
    ++loaded;
  }
  return loaded;
}

std::map<std::string, Tensor> Module::state_dict(const std::string& prefix) const {
  std::map<std::string, Tensor> out;
  for (const auto& [name, p] : named_parameters(prefix)) out.emplace(name, p.value());
  return out;
}

}  // namespace wa::nn
