#include "train/trainer.hpp"

#include <cstdio>

#include "autograd/ops.hpp"

namespace wa::train {

Trainer::Trainer(nn::Module& model, const data::Dataset& train_set, const data::Dataset& val_set,
                 TrainerOptions opts)
    : model_(model), train_set_(train_set), val_set_(val_set), opts_(opts) {
  if (opts_.use_adam) {
    AdamOptions ao;
    ao.lr = opts_.lr;
    ao.weight_decay = opts_.weight_decay;
    optimizer_ = std::make_unique<Adam>(model.parameters(), ao);
  } else {
    SgdOptions so;
    so.lr = opts_.lr;
    so.weight_decay = opts_.weight_decay;
    optimizer_ = std::make_unique<Sgd>(model.parameters(), so);
  }
}

std::vector<EpochStats> Trainer::fit() {
  data::DataLoader loader(train_set_, opts_.batch_size, /*shuffle=*/true, opts_.seed);
  const std::int64_t steps_per_epoch = loader.batches();
  CosineSchedule schedule(opts_.lr, static_cast<std::int64_t>(opts_.epochs) * steps_per_epoch);

  std::vector<EpochStats> history;
  std::int64_t global_step = 0;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    loader.reset();
    model_.set_training(true);
    double loss_acc = 0;
    double acc_acc = 0;
    for (std::int64_t b = 0; b < steps_per_epoch; ++b) {
      const auto batch = loader.get(b);
      if (opts_.cosine) optimizer_->set_lr(schedule.at(global_step));
      ++global_step;

      ag::Variable x(batch.images, /*requires_grad=*/false, "input");
      ag::Variable logits = model_.forward(x);
      ag::Variable loss = ag::softmax_cross_entropy(logits, batch.labels);
      optimizer_->zero_grad();
      loss.backward();
      optimizer_->step();

      loss_acc += loss.value().at(0);
      acc_acc += ag::accuracy(logits.value(), batch.labels);
    }

    EpochStats st;
    st.epoch = epoch;
    st.train_loss = static_cast<float>(loss_acc / static_cast<double>(steps_per_epoch));
    st.train_acc = static_cast<float>(acc_acc / static_cast<double>(steps_per_epoch));
    st.val_acc = evaluate(val_set_);
    st.lr = optimizer_->lr();
    if (opts_.verbose) {
      std::printf("  epoch %2d  loss %.4f  train_acc %.3f  val_acc %.3f  lr %.2e\n", epoch,
                  st.train_loss, st.train_acc, st.val_acc, st.lr);
      std::fflush(stdout);
    }
    if (opts_.on_epoch) opts_.on_epoch(st);
    history.push_back(st);
  }
  return history;
}

float Trainer::evaluate(const data::Dataset& ds) {
  model_.set_training(false);
  data::DataLoader loader(ds, opts_.batch_size, /*shuffle=*/false);
  double acc = 0;
  std::int64_t count = 0;
  for (std::int64_t b = 0; b < loader.batches(); ++b) {
    const auto batch = loader.get(b);
    ag::Variable x(batch.images, false, "input");
    const Tensor logits = model_.forward(x).value();
    acc += static_cast<double>(ag::accuracy(logits, batch.labels)) *
           static_cast<double>(batch.labels.size());
    count += static_cast<std::int64_t>(batch.labels.size());
  }
  return count > 0 ? static_cast<float>(acc / static_cast<double>(count)) : 0.F;
}

void Trainer::warmup_observers(int max_batches) {
  model_.set_training(true);
  data::DataLoader loader(train_set_, opts_.batch_size, false);
  const std::int64_t n =
      max_batches < 0 ? loader.batches()
                      : std::min<std::int64_t>(max_batches, loader.batches());
  for (std::int64_t b = 0; b < n; ++b) {
    const auto batch = loader.get(b);
    ag::Variable x(batch.images, false, "input");
    model_.forward(x);  // forward only: observers update, weights untouched
  }
}

}  // namespace wa::train
