// Training / evaluation loop shared by every experiment harness.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/module.hpp"
#include "train/optimizer.hpp"

namespace wa::train {

struct EpochStats {
  int epoch = 0;
  float train_loss = 0.F;
  float train_acc = 0.F;
  float val_acc = 0.F;
  float lr = 0.F;
};

struct TrainerOptions {
  std::int64_t batch_size = 32;
  int epochs = 5;
  bool use_adam = true;  // the paper uses Adam for winograd-aware training
  float lr = 1e-3F;
  float weight_decay = 0.F;
  bool cosine = true;
  std::uint64_t seed = 0;
  bool verbose = false;
  /// Optional per-epoch callback (e.g. to record Fig. 5/6 curves).
  std::function<void(const EpochStats&)> on_epoch;
};

/// Minimal trainer: cross-entropy objective, accuracy metric. The model is
/// switched to training mode for train batches (batch-norm batch stats,
/// observer updates) and eval mode for validation.
class Trainer {
 public:
  Trainer(nn::Module& model, const data::Dataset& train_set, const data::Dataset& val_set,
          TrainerOptions opts);

  /// Train for opts.epochs; returns per-epoch statistics.
  std::vector<EpochStats> fit();

  /// Accuracy on a dataset (eval mode).
  float evaluate(const data::Dataset& ds);

  /// One pass over the training set without touching weights, to warm up
  /// quantization observers ("warmup of all the moving averages" — Table 1).
  void warmup_observers(int max_batches = -1);

 private:
  nn::Module& model_;
  const data::Dataset& train_set_;
  const data::Dataset& val_set_;
  TrainerOptions opts_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace wa::train
