// Optimizers: SGD with (Nesterov) momentum, and Adam.
//
// The paper trains winograd-aware networks with Adam (§5.1) and uses
// mini-batch SGD with Nesterov momentum for wiNAS model weights plus
// Adam with β1 = 0 for the architecture parameters (§5.2).
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace wa::train {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
  float lr_ = 0.01F;
};

struct SgdOptions {
  float lr = 0.05F;
  float momentum = 0.9F;
  bool nesterov = true;
  float weight_decay = 0.F;  // the λ0‖w‖² term of the paper's Eq. 2
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> params, SgdOptions opts);
  void step() override;

 private:
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  float lr = 1e-3F;
  float beta1 = 0.9F;  // wiNAS arch updates use beta1 = 0 (only sampled paths move)
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.F;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, AdamOptions opts);
  void step() override;

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

/// Cosine annealing from `base_lr` to `min_lr` over `total_steps`
/// (Loshchilov & Hutter 2017, no restarts — as used in the paper).
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, std::int64_t total_steps, float min_lr = 0.F)
      : base_(base_lr), min_(min_lr), total_(total_steps) {}
  float at(std::int64_t step) const;

 private:
  float base_, min_;
  std::int64_t total_;
};

}  // namespace wa::train
