#include "train/optimizer.hpp"

#include <cmath>
#include <numbers>

namespace wa::train {

Sgd::Sgd(std::vector<ag::Variable> params, SgdOptions opts)
    : Optimizer(std::move(params)), opts_(opts) {
  lr_ = opts.lr;
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(Tensor::zeros(p.value().shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto val = p.value().data();
    auto grad = p.grad().data();
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      float g = grad[j] + opts_.weight_decay * val[j];
      vel[j] = opts_.momentum * vel[j] + g;
      // Nesterov: look ahead along the updated velocity.
      const float update = opts_.nesterov ? g + opts_.momentum * vel[j] : vel[j];
      val[j] -= lr_ * update;
    }
  }
}

Adam::Adam(std::vector<ag::Variable> params, AdamOptions opts)
    : Optimizer(std::move(params)), opts_(opts) {
  lr_ = opts.lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(Tensor::zeros(p.value().shape()));
    v_.emplace_back(Tensor::zeros(p.value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.F - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.F - std::pow(opts_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto val = p.value().data();
    auto grad = p.grad().data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float g = grad[j] + opts_.weight_decay * val[j];
      m[j] = opts_.beta1 * m[j] + (1.F - opts_.beta1) * g;
      v[j] = opts_.beta2 * v[j] + (1.F - opts_.beta2) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

float CosineSchedule::at(std::int64_t step) const {
  if (total_ <= 1) return min_;
  const float progress =
      static_cast<float>(std::min(step, total_ - 1)) / static_cast<float>(total_ - 1);
  return min_ + 0.5F * (base_ - min_) * (1.F + std::cos(std::numbers::pi_v<float> * progress));
}

}  // namespace wa::train
