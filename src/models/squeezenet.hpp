// SqueezeNet (CIFAR-sized) for the appendix A.1 comparison (Table 4).
//
// Eight fire modules -> eight searchable expand-3x3 convolutions, matching
// the paper's count. Squeeze and expand-1x1 convolutions are im2row.
#pragma once

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"

namespace wa::models {

struct SqueezeNetConfig {
  int num_classes = 10;
  float width_mult = 0.5F;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
};

/// Fire module: squeeze 1x1 -> relu -> {expand 1x1, expand 3x3} -> concat.
class Fire : public nn::Module {
 public:
  Fire(std::int64_t in_ch, std::int64_t squeeze_ch, std::int64_t expand_ch,
       const nn::Conv2dOptions& expand3_opts, const std::string& name, const ConvBuilder& build,
       Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t out_channels_;
  std::shared_ptr<nn::Conv2d> squeeze_, expand1_;
  std::shared_ptr<nn::Module> expand3_;
  std::shared_ptr<nn::BatchNorm2d> bn_;
};

class SqueezeNet : public nn::Module {
 public:
  SqueezeNet(const SqueezeNetConfig& cfg, Rng& rng) : SqueezeNet(cfg, default_builder(rng), rng) {}
  SqueezeNet(const SqueezeNetConfig& cfg, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  static std::vector<std::string> searchable_layer_names();

 private:
  std::shared_ptr<nn::Conv2d> conv_in_;
  std::shared_ptr<nn::BatchNorm2d> bn_in_;
  std::vector<std::shared_ptr<Fire>> fires_;
  std::vector<int> pool_after_;  // fire indices followed by 2x2 max-pool
  std::shared_ptr<nn::MaxPool2d> pool_;
  std::shared_ptr<nn::GlobalAvgPool> gap_;
  std::shared_ptr<nn::Linear> fc_;
};

}  // namespace wa::models
