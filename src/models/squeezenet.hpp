// SqueezeNet (CIFAR-sized) for the appendix A.1 comparison (Table 4).
//
// Eight fire modules -> eight searchable expand-3x3 convolutions, matching
// the paper's count. Squeeze and expand-1x1 convolutions are im2row.
#pragma once

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"
#include "quant/observer.hpp"

namespace wa::models {

struct SqueezeNetConfig {
  int num_classes = 10;
  float width_mult = 0.5F;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
};

/// Fire module: squeeze 1x1 -> relu -> {expand 1x1, expand 3x3} -> concat.
class Fire : public nn::Module {
 public:
  Fire(std::int64_t in_ch, std::int64_t squeeze_ch, std::int64_t expand_ch,
       const nn::Conv2dOptions& expand3_opts, const std::string& name, const ConvBuilder& build,
       Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::int64_t out_channels() const { return out_channels_; }

  // Structure accessors for the deployment compiler (compile_squeezenet).
  nn::Conv2d& squeeze() { return *squeeze_; }
  nn::Conv2d& expand1() { return *expand1_; }
  nn::Module& expand3() { return *expand3_; }
  nn::BatchNorm2d& bn() { return *bn_; }

  /// Range observers on the fire-module join, warmed during training
  /// alongside the layer observers: the two pre-concat expand branches, the
  /// concatenated tensor (what the integer ConcatStage requantizes onto) and
  /// the post-bn-ReLU module output — QAT never fake-quantizes these, so
  /// deployment freezes their ranges from here (the BasicBlock precedent).
  quant::RangeObserver& expand1_observer() { return expand1_obs_; }
  quant::RangeObserver& expand3_observer() { return expand3_obs_; }
  quant::RangeObserver& concat_observer() { return concat_obs_; }
  quant::RangeObserver& output_observer() { return out_obs_; }

 private:
  std::int64_t out_channels_;
  std::shared_ptr<nn::Conv2d> squeeze_, expand1_;
  std::shared_ptr<nn::Module> expand3_;
  std::shared_ptr<nn::BatchNorm2d> bn_;
  quant::RangeObserver expand1_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver expand3_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver concat_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver out_obs_{quant::RangeObserver::Mode::kEma};
};

class SqueezeNet : public nn::Module {
 public:
  SqueezeNet(const SqueezeNetConfig& cfg, Rng& rng) : SqueezeNet(cfg, default_builder(rng), rng) {}
  SqueezeNet(const SqueezeNetConfig& cfg, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  static std::vector<std::string> searchable_layer_names();

  // Structure accessors for the deployment compiler (compile_squeezenet).
  nn::Conv2d& conv_in() { return *conv_in_; }
  nn::BatchNorm2d& bn_in() { return *bn_in_; }
  const std::vector<std::shared_ptr<Fire>>& fires() { return fires_; }
  const std::vector<int>& pool_after() const { return pool_after_; }
  nn::MaxPool2d& pool() { return *pool_; }
  nn::Linear& fc() { return *fc_; }

 private:
  std::shared_ptr<nn::Conv2d> conv_in_;
  std::shared_ptr<nn::BatchNorm2d> bn_in_;
  std::vector<std::shared_ptr<Fire>> fires_;
  std::vector<int> pool_after_;  // fire indices followed by 2x2 max-pool
  std::shared_ptr<nn::MaxPool2d> pool_;
  std::shared_ptr<nn::GlobalAvgPool> gap_;
  std::shared_ptr<nn::Linear> fc_;
};

}  // namespace wa::models
