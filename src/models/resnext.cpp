#include "models/resnext.hpp"

#include "autograd/ops.hpp"
#include "models/resnet.hpp"  // scaled_channels

namespace wa::models {

ResNeXtBlock::ResNeXtBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t group_width,
                           std::int64_t cardinality, bool downsample,
                           const nn::Conv2dOptions& conv_opts, const std::string& name,
                           const ConvBuilder& build, Rng& rng)
    : downsample_(downsample) {
  const std::int64_t d = group_width * cardinality;  // grouped conv width

  nn::Conv2dOptions r1;
  r1.in_channels = in_ch;
  r1.out_channels = d;
  r1.kernel = 1;
  r1.pad = 0;
  r1.qspec = conv_opts.qspec;
  reduce_ = register_module<nn::Conv2d>("reduce", r1, rng);
  bn1_ = register_module<nn::BatchNorm2d>("bn1", d);

  nn::Conv2dOptions c3 = conv_opts;
  c3.in_channels = d;
  c3.out_channels = d;
  c3.groups = cardinality;
  conv3_ = build(c3, name + ".conv3");
  register_child("conv3", conv3_);
  bn2_ = register_module<nn::BatchNorm2d>("bn2", d);

  nn::Conv2dOptions e1 = r1;
  e1.in_channels = d;
  e1.out_channels = out_ch;
  expand_ = register_module<nn::Conv2d>("expand", e1, rng);
  bn3_ = register_module<nn::BatchNorm2d>("bn3", out_ch);

  if (downsample_) {
    pool_ = register_module<nn::MaxPool2d>("pool", 2, 2);
    pool_short_ = register_module<nn::MaxPool2d>("pool_short", 2, 2);
  }
  if (downsample_ || in_ch != out_ch) {
    nn::Conv2dOptions sc = r1;
    sc.in_channels = in_ch;
    sc.out_channels = out_ch;
    shortcut_ = register_module<nn::Conv2d>("shortcut", sc, rng);
    bn_short_ = register_module<nn::BatchNorm2d>("bn_short", out_ch);
  }
}

ag::Variable ResNeXtBlock::forward(const ag::Variable& x) {
  ag::Variable main = x;
  if (downsample_) main = pool_->forward(main);
  main = ag::relu(bn1_->forward(reduce_->forward(main)));
  main = ag::relu(bn2_->forward(conv3_->forward(main)));
  main = bn3_->forward(expand_->forward(main));

  ag::Variable skip = x;
  if (downsample_) skip = pool_short_->forward(skip);
  if (shortcut_) skip = bn_short_->forward(shortcut_->forward(skip));
  ag::Variable out = ag::relu(ag::add(main, skip));
  if (training()) {
    // Warm the residual-join observers (values only — QAT leaves the
    // residual in float; deployment requantizes with these frozen ranges).
    main_obs_.observe(main.value());
    skip_obs_.observe(skip.value());
    out_obs_.observe(out.value());
  }
  return out;
}

std::vector<std::string> ResNeXt20::searchable_layer_names() {
  std::vector<std::string> names;
  for (int stage = 1; stage <= 3; ++stage) {
    for (int block = 0; block < 2; ++block) {
      names.push_back("stage" + std::to_string(stage) + ".block" + std::to_string(block) +
                      ".conv3");
    }
  }
  return names;
}

ResNeXt20::ResNeXt20(const ResNeXtConfig& cfg, const ConvBuilder& build, Rng& rng) {
  const std::int64_t stem = scaled_channels(64, cfg.width_mult);
  const std::int64_t stage_out[3] = {scaled_channels(256, cfg.width_mult),
                                     scaled_channels(512, cfg.width_mult),
                                     scaled_channels(1024, cfg.width_mult)};

  nn::Conv2dOptions in_opts;
  in_opts.in_channels = 3;
  in_opts.out_channels = stem;
  in_opts.qspec = cfg.qspec;
  conv_in_ = register_module<nn::Conv2d>("conv_in", in_opts, rng);
  bn_in_ = register_module<nn::BatchNorm2d>("bn_in", stem);

  nn::Conv2dOptions block_opts;
  block_opts.algo = cfg.algo;
  block_opts.qspec = cfg.qspec;
  block_opts.flex_transforms = cfg.flex_transforms;

  std::int64_t in_ch = stem;
  for (int stage = 1; stage <= 3; ++stage) {
    // Group width doubles per stage, as in ResNeXt for CIFAR.
    const std::int64_t gw = std::max<std::int64_t>(
        1, scaled_channels(cfg.base_width, cfg.width_mult) << (stage - 1));
    for (int block = 0; block < 2; ++block) {
      const bool down = stage > 1 && block == 0;
      const std::string name = "stage" + std::to_string(stage) + ".block" + std::to_string(block);
      auto blk = std::make_shared<ResNeXtBlock>(in_ch, stage_out[stage - 1], gw, cfg.cardinality,
                                                down, block_opts, name, build, rng);
      register_child(name, blk);
      blocks_.push_back(blk);
      in_ch = stage_out[stage - 1];
    }
  }
  gap_ = register_module<nn::GlobalAvgPool>("gap");
  fc_ = register_module<nn::Linear>("fc", in_ch, cfg.num_classes, cfg.qspec, rng);
}

ag::Variable ResNeXt20::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn_in_->forward(conv_in_->forward(x)));
  for (auto& b : blocks_) h = b->forward(h);
  return fc_->forward(gap_->forward(h));
}

}  // namespace wa::models
