#include "models/lenet.hpp"

#include "autograd/ops.hpp"

namespace wa::models {

LeNet5::LeNet5(const LeNetConfig& cfg, const ConvBuilder& build, Rng& rng) {
  nn::Conv2dOptions c1;
  c1.in_channels = 1;
  c1.out_channels = 6;
  c1.kernel = 5;
  c1.pad = 0;
  c1.bias = true;
  c1.algo = cfg.algo;
  c1.qspec = cfg.qspec;
  c1.flex_transforms = cfg.flex_transforms;
  conv1_ = build(c1, "conv1");
  register_child("conv1", conv1_);
  pool1_ = register_module<nn::MaxPool2d>("pool1", 2, 2);

  nn::Conv2dOptions c2 = c1;
  c2.in_channels = 6;
  c2.out_channels = 16;
  conv2_ = build(c2, "conv2");
  register_child("conv2", conv2_);
  pool2_ = register_module<nn::MaxPool2d>("pool2", 2, 2);

  flatten_ = register_module<nn::Flatten>("flatten");
  // 28 -> 24 -> 12 -> 8 -> 4: 16 * 4 * 4 = 256 features.
  fc1_ = register_module<nn::Linear>("fc1", 256, 120, cfg.qspec, rng);
  fc2_ = register_module<nn::Linear>("fc2", 120, 84, cfg.qspec, rng);
  fc3_ = register_module<nn::Linear>("fc3", 84, cfg.num_classes, cfg.qspec, rng);
}

ag::Variable LeNet5::forward(const ag::Variable& x) {
  ag::Variable h = pool1_->forward(ag::relu(conv1_->forward(x)));
  h = pool2_->forward(ag::relu(conv2_->forward(h)));
  h = flatten_->forward(h);
  h = ag::relu(fc1_->forward(h));
  h = ag::relu(fc2_->forward(h));
  return fc3_->forward(h);
}

}  // namespace wa::models
