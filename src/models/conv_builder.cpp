#include "models/conv_builder.hpp"

namespace wa::models {

ConvBuilder default_builder(Rng& rng) {
  return [&rng](const nn::Conv2dOptions& opts, const std::string&) {
    return core::make_conv(opts, rng);
  };
}

ConvBuilder override_builder(std::map<std::string, LayerOverride> table, Rng& rng) {
  return [table = std::move(table), &rng](const nn::Conv2dOptions& opts,
                                          const std::string& layer_name) {
    nn::Conv2dOptions effective = opts;
    if (const auto it = table.find(layer_name); it != table.end()) {
      effective.algo = it->second.algo;
      effective.qspec = it->second.qspec;
      effective.flex_transforms = it->second.flex;
    }
    return core::make_conv(effective, rng);
  };
}

}  // namespace wa::models
