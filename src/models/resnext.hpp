// ResNeXt-20 (8x16) for the appendix A.1 comparison (Table 5).
//
// Six bottleneck blocks (two per stage) -> six searchable grouped 3x3
// convolutions, matching the paper's count. Cardinality 8, base width 16.
#pragma once

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"
#include "quant/observer.hpp"

namespace wa::models {

struct ResNeXtConfig {
  int num_classes = 10;
  int cardinality = 8;
  int base_width = 16;
  float width_mult = 0.25F;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
};

/// Bottleneck: 1x1 reduce -> grouped 3x3 (searchable) -> 1x1 expand + skip.
class ResNeXtBlock : public nn::Module {
 public:
  ResNeXtBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t group_width,
               std::int64_t cardinality, bool downsample, const nn::Conv2dOptions& conv_opts,
               const std::string& name, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  // Structure accessors for the deployment compiler (compile_resnext).
  bool downsample() const { return downsample_; }
  nn::Conv2d& reduce() { return *reduce_; }
  nn::Module& conv3() { return *conv3_; }
  nn::Conv2d& expand() { return *expand_; }
  nn::BatchNorm2d& bn1() { return *bn1_; }
  nn::BatchNorm2d& bn2() { return *bn2_; }
  nn::BatchNorm2d& bn3() { return *bn3_; }
  /// nullptr for identity-skip blocks.
  nn::Conv2d* shortcut() { return shortcut_.get(); }
  nn::BatchNorm2d* bn_short() { return bn_short_.get(); }

  /// Range observers on the residual join, warmed during training (the
  /// BasicBlock precedent): pre-add main branch (post-bn3), pre-add skip
  /// branch, and the post-add-ReLU block output.
  quant::RangeObserver& main_branch_observer() { return main_obs_; }
  quant::RangeObserver& skip_branch_observer() { return skip_obs_; }
  quant::RangeObserver& output_observer() { return out_obs_; }

 private:
  bool downsample_;
  std::shared_ptr<nn::Conv2d> reduce_, expand_, shortcut_;
  std::shared_ptr<nn::Module> conv3_;
  std::shared_ptr<nn::BatchNorm2d> bn1_, bn2_, bn3_, bn_short_;
  std::shared_ptr<nn::MaxPool2d> pool_, pool_short_;
  quant::RangeObserver main_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver skip_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver out_obs_{quant::RangeObserver::Mode::kEma};
};

class ResNeXt20 : public nn::Module {
 public:
  ResNeXt20(const ResNeXtConfig& cfg, Rng& rng) : ResNeXt20(cfg, default_builder(rng), rng) {}
  ResNeXt20(const ResNeXtConfig& cfg, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  static std::vector<std::string> searchable_layer_names();

  // Structure accessors for the deployment compiler (compile_resnext).
  nn::Conv2d& conv_in() { return *conv_in_; }
  nn::BatchNorm2d& bn_in() { return *bn_in_; }
  const std::vector<std::shared_ptr<ResNeXtBlock>>& blocks() { return blocks_; }
  nn::Linear& fc() { return *fc_; }

 private:
  std::shared_ptr<nn::Conv2d> conv_in_;
  std::shared_ptr<nn::BatchNorm2d> bn_in_;
  std::vector<std::shared_ptr<ResNeXtBlock>> blocks_;
  std::shared_ptr<nn::GlobalAvgPool> gap_;
  std::shared_ptr<nn::Linear> fc_;
};

}  // namespace wa::models
