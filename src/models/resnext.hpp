// ResNeXt-20 (8x16) for the appendix A.1 comparison (Table 5).
//
// Six bottleneck blocks (two per stage) -> six searchable grouped 3x3
// convolutions, matching the paper's count. Cardinality 8, base width 16.
#pragma once

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"

namespace wa::models {

struct ResNeXtConfig {
  int num_classes = 10;
  int cardinality = 8;
  int base_width = 16;
  float width_mult = 0.25F;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
};

/// Bottleneck: 1x1 reduce -> grouped 3x3 (searchable) -> 1x1 expand + skip.
class ResNeXtBlock : public nn::Module {
 public:
  ResNeXtBlock(std::int64_t in_ch, std::int64_t out_ch, std::int64_t group_width,
               std::int64_t cardinality, bool downsample, const nn::Conv2dOptions& conv_opts,
               const std::string& name, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

 private:
  bool downsample_;
  std::shared_ptr<nn::Conv2d> reduce_, expand_, shortcut_;
  std::shared_ptr<nn::Module> conv3_;
  std::shared_ptr<nn::BatchNorm2d> bn1_, bn2_, bn3_, bn_short_;
  std::shared_ptr<nn::MaxPool2d> pool_, pool_short_;
};

class ResNeXt20 : public nn::Module {
 public:
  ResNeXt20(const ResNeXtConfig& cfg, Rng& rng) : ResNeXt20(cfg, default_builder(rng), rng) {}
  ResNeXt20(const ResNeXtConfig& cfg, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  static std::vector<std::string> searchable_layer_names();

 private:
  std::shared_ptr<nn::Conv2d> conv_in_;
  std::shared_ptr<nn::BatchNorm2d> bn_in_;
  std::vector<std::shared_ptr<ResNeXtBlock>> blocks_;
  std::shared_ptr<nn::GlobalAvgPool> gap_;
  std::shared_ptr<nn::Linear> fc_;
};

}  // namespace wa::models
