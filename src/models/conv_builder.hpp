// Builder hook for "searchable" 3x3 convolutions.
//
// Every model routes its Winograd-eligible 3x3 convolutions through a
// ConvBuilder. The default builder materialises the layer the options
// describe (im2row / F2 / F4 / F6, static or -flex); wiNAS supplies a
// builder that returns MixedConv2d super-layers instead, and the Table 3
// harness supplies one that looks up per-layer assignments found by the
// search. Input layers and 1x1 convolutions do NOT go through the builder —
// the paper fixes those to im2row.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/wa_conv2d.hpp"
#include "nn/conv_config.hpp"
#include "nn/module.hpp"

namespace wa::models {

using ConvBuilder = std::function<std::shared_ptr<nn::Module>(const nn::Conv2dOptions& opts,
                                                              const std::string& layer_name)>;

/// Builds exactly what the options say via core::make_conv.
ConvBuilder default_builder(Rng& rng);

/// Per-layer algorithm/bit-width override: looks up `layer_name` in the map
/// and falls back to the provided options. Used to instantiate the
/// wiNAS-found architectures of Fig. 9 / appendix A.3.
struct LayerOverride {
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex = false;
};
ConvBuilder override_builder(std::map<std::string, LayerOverride> table, Rng& rng);

}  // namespace wa::models
