#include "models/resnet.hpp"

#include <cmath>

#include "autograd/checkpoint.hpp"
#include "autograd/ops.hpp"

namespace wa::models {

std::int64_t scaled_channels(std::int64_t base, float mult) {
  return std::max<std::int64_t>(1, std::llround(static_cast<double>(base) * mult));
}

BasicBlock::BasicBlock(std::int64_t in_ch, std::int64_t out_ch, bool downsample,
                       const nn::Conv2dOptions& conv_opts, const std::string& name,
                       const ConvBuilder& build, Rng& rng)
    : downsample_(downsample) {
  nn::Conv2dOptions c1 = conv_opts;
  c1.in_channels = in_ch;
  c1.out_channels = out_ch;
  conv1_ = build(c1, name + ".conv1");
  register_child("conv1", conv1_);
  bn1_ = register_module<nn::BatchNorm2d>("bn1", out_ch);

  nn::Conv2dOptions c2 = conv_opts;
  c2.in_channels = out_ch;
  c2.out_channels = out_ch;
  conv2_ = build(c2, name + ".conv2");
  register_child("conv2", conv2_);
  bn2_ = register_module<nn::BatchNorm2d>("bn2", out_ch);

  if (downsample_) {
    pool_ = register_module<nn::MaxPool2d>("pool", 2, 2);
    pool_short_ = register_module<nn::MaxPool2d>("pool_short", 2, 2);
  }
  if (downsample_ || in_ch != out_ch) {
    // Projection shortcut: 1x1 im2row at the block's quantization level
    // (fixed — never part of the Winograd search space).
    nn::Conv2dOptions sc;
    sc.in_channels = in_ch;
    sc.out_channels = out_ch;
    sc.kernel = 1;
    sc.pad = 0;
    sc.qspec = conv_opts.qspec;
    shortcut_ = register_module<nn::Conv2d>("shortcut", sc, rng);
    bn_short_ = register_module<nn::BatchNorm2d>("bn_short", out_ch);
  }
}

ag::Variable BasicBlock::forward(const ag::Variable& x) {
  ag::Variable main = x;
  if (downsample_) main = pool_->forward(main);
  main = bn1_->forward(conv1_->forward(main));
  main = ag::relu(main);
  main = bn2_->forward(conv2_->forward(main));

  ag::Variable skip = x;
  if (downsample_) skip = pool_short_->forward(skip);
  if (shortcut_) skip = bn_short_->forward(shortcut_->forward(skip));
  ag::Variable out = ag::relu(ag::add(main, skip));
  if (training()) {
    // Warm the residual-join observers (values only — QAT leaves the
    // residual unquantized, so this changes no forward numerics).
    main_obs_.observe(main.value());
    skip_obs_.observe(skip.value());
    out_obs_.observe(out.value());
  }
  return out;
}

std::vector<std::string> ResNet18::searchable_layer_names() {
  std::vector<std::string> names;
  for (int stage = 1; stage <= 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      for (int conv = 1; conv <= 2; ++conv) {
        names.push_back("stage" + std::to_string(stage) + ".block" + std::to_string(block) +
                        ".conv" + std::to_string(conv));
      }
    }
  }
  return names;
}

ResNet18::ResNet18(const ResNetConfig& cfg, const ConvBuilder& build, Rng& rng) : cfg_(cfg) {
  const std::int64_t stem = scaled_channels(32, cfg.width_mult);  // paper: 64 -> 32
  const std::int64_t stage_ch[4] = {
      scaled_channels(64, cfg.width_mult), scaled_channels(128, cfg.width_mult),
      scaled_channels(256, cfg.width_mult), scaled_channels(512, cfg.width_mult)};

  // Input layer: always standard convolution (im2row) — Winograd does not
  // pay off on 3-channel inputs (paper §6.2) and the paper fixes it.
  nn::Conv2dOptions in_opts;
  in_opts.in_channels = 3;
  in_opts.out_channels = stem;
  in_opts.qspec = cfg.qspec;
  conv_in_ = register_module<nn::Conv2d>("conv_in", in_opts, rng);
  bn_in_ = register_module<nn::BatchNorm2d>("bn_in", stem);

  nn::Conv2dOptions block_opts;
  block_opts.algo = cfg.algo;
  block_opts.qspec = cfg.qspec;
  block_opts.flex_transforms = cfg.flex_transforms;
  block_opts.per_channel_weights = cfg.per_channel_weights;
  block_opts.qspec_u = cfg.qspec_u;
  block_opts.qspec_v = cfg.qspec_v;
  block_opts.qspec_m = cfg.qspec_m;
  block_opts.qspec_y = cfg.qspec_y;
  block_opts.tap_group_size = cfg.tap_group_size;

  std::int64_t in_ch = stem;
  for (int stage = 1; stage <= 4; ++stage) {
    nn::Conv2dOptions opts = block_opts;
    if (stage == 4 && cfg.pin_last_stage_to_f2 && nn::is_winograd(cfg.algo)) {
      opts.algo = nn::ConvAlgo::kWinograd2;  // §5.1: last two blocks stay F2
    }
    for (int block = 0; block < 2; ++block) {
      const std::int64_t out_ch = stage_ch[stage - 1];
      const bool down = stage > 1 && block == 0;  // stage 1 keeps 32x32
      const std::string name = "stage" + std::to_string(stage) + ".block" + std::to_string(block);
      auto blk = std::make_shared<BasicBlock>(in_ch, out_ch, down, opts, name, build, rng);
      register_child(name, blk);
      blocks_.push_back(blk);
      in_ch = out_ch;
    }
  }

  gap_ = register_module<nn::GlobalAvgPool>("gap");
  fc_ = register_module<nn::Linear>("fc", in_ch, cfg.num_classes, cfg.qspec, rng);
}

ag::Variable ResNet18::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn_in_->forward(conv_in_->forward(x)));
  for (auto& b : blocks_) {
    if (cfg_.grad_checkpoint && training()) {
      // Recompute the block in backward instead of retaining its graph
      // (paper §7). Eval passes build no graph, so they skip the wrapper.
      BasicBlock* blk = b.get();
      h = ag::checkpoint([blk](const ag::Variable& v) { return blk->forward(v); }, h,
                         b->parameters());
    } else {
      h = b->forward(h);
    }
  }
  return fc_->forward(gap_->forward(h));
}

}  // namespace wa::models
