// ResNet-18 for 32x32 inputs, modified exactly as the paper describes:
//  - the input convolution produces 32 (not 64) channels and always uses
//    standard (im2row) convolution;
//  - every stride-2 convolution is replaced by 2x2 max-pool followed by a
//    dense 3x3 convolution (there is no strided Winograd);
//  - a width multiplier in [0.125, 1.0] scales every channel count
//    (215K .. 11M parameters);
//  - when a Winograd algorithm is selected globally, the last two residual
//    blocks stay at F2 (§5.1).
// The sixteen block 3x3 convolutions are the "searchable" layers wiNAS
// optimises; shortcut 1x1 convolutions are fixed to im2row.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"

namespace wa::models {

struct ResNetConfig {
  float width_mult = 0.25F;
  int num_classes = 10;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;  // applied to searchable 3x3 convs
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
  /// Apply the paper's constraint: blocks of the last stage use F2 whenever
  /// `algo` is a Winograd configuration.
  bool pin_last_stage_to_f2 = true;
  /// Per-output-channel weight scales (discussion-section extension).
  bool per_channel_weights = false;
  /// Per-stage bit-width overrides for the Winograd Qx stages (quantization
  /// diversity, §3.2); forwarded to every Winograd-aware block conv.
  std::optional<quant::QuantSpec> qspec_u, qspec_v, qspec_m, qspec_y;
  /// Taps per scale group for the transform-domain Qx stages (0 = legacy
  /// per-tensor); forwarded to every Winograd-aware block conv. Per-tap
  /// scales are what make the larger-tile configurations (F4/F6) deployable
  /// at production accuracy — one scale per Winograd tap instead of one per
  /// tensor. Symmetric schemes only.
  std::int64_t tap_group_size = 0;
  /// Checkpoint each residual block during training (paper §7: "we had to
  /// rely on gradient checkpointing to lower the memory peak"): block
  /// intermediates are recomputed in backward instead of being retained.
  bool grad_checkpoint = false;
};

/// One pre-activation-free basic block (conv-bn-relu-conv-bn + skip).
class BasicBlock : public nn::Module {
 public:
  BasicBlock(std::int64_t in_ch, std::int64_t out_ch, bool downsample,
             const nn::Conv2dOptions& conv_opts, const std::string& name,
             const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  // Structure accessors for the deployment compiler (compile_resnet18).
  bool downsample() const { return downsample_; }
  nn::Module& conv1() { return *conv1_; }
  nn::Module& conv2() { return *conv2_; }
  nn::BatchNorm2d& bn1() { return *bn1_; }
  nn::BatchNorm2d& bn2() { return *bn2_; }
  /// nullptr for identity-skip blocks.
  nn::Conv2d* shortcut() { return shortcut_.get(); }
  nn::BatchNorm2d* bn_short() { return bn_short_.get(); }

  /// Range observers on the residual join, warmed during training alongside
  /// the layer observers: the two pre-add branch activations (post-bn2 main,
  /// post-shortcut skip) and the post-add-ReLU block output. These are what
  /// the integer skip-add requantizes with — the branches themselves are
  /// never fake-quantized in QAT (the paper's training leaves the residual
  /// in float), so deployment needs their ranges frozen from here.
  quant::RangeObserver& main_branch_observer() { return main_obs_; }
  quant::RangeObserver& skip_branch_observer() { return skip_obs_; }
  quant::RangeObserver& output_observer() { return out_obs_; }

 private:
  bool downsample_;
  std::shared_ptr<nn::Module> conv1_, conv2_;
  std::shared_ptr<nn::BatchNorm2d> bn1_, bn2_, bn_short_;
  std::shared_ptr<nn::Conv2d> shortcut_;  // 1x1, im2row, when shape changes
  std::shared_ptr<nn::MaxPool2d> pool_, pool_short_;
  quant::RangeObserver main_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver skip_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver out_obs_{quant::RangeObserver::Mode::kEma};
};

class ResNet18 : public nn::Module {
 public:
  ResNet18(const ResNetConfig& cfg, Rng& rng) : ResNet18(cfg, default_builder(rng), rng) {}
  ResNet18(const ResNetConfig& cfg, const ConvBuilder& build, Rng& rng);

  ag::Variable forward(const ag::Variable& x) override;

  const ResNetConfig& config() const { return cfg_; }
  /// Names of the 16 searchable 3x3 convolutions, in network order
  /// ("stage1.block0.conv1", ...). Matches the layer names passed to the
  /// ConvBuilder.
  static std::vector<std::string> searchable_layer_names();

  // Structure accessors for the deployment compiler (compile_resnet18).
  nn::Conv2d& conv_in() { return *conv_in_; }
  nn::BatchNorm2d& bn_in() { return *bn_in_; }
  const std::vector<std::shared_ptr<BasicBlock>>& blocks() { return blocks_; }
  nn::Linear& fc() { return *fc_; }

 private:
  ResNetConfig cfg_;
  std::shared_ptr<nn::Conv2d> conv_in_;
  std::shared_ptr<nn::BatchNorm2d> bn_in_;
  std::vector<std::shared_ptr<BasicBlock>> blocks_;
  std::shared_ptr<nn::GlobalAvgPool> gap_;
  std::shared_ptr<nn::Linear> fc_;
};

/// max(1, round(base * mult)).
std::int64_t scaled_channels(std::int64_t base, float mult);

}  // namespace wa::models
