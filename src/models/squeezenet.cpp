#include "models/squeezenet.hpp"

#include <algorithm>

#include "autograd/ops.hpp"
#include "models/resnet.hpp"  // scaled_channels

namespace wa::models {

Fire::Fire(std::int64_t in_ch, std::int64_t squeeze_ch, std::int64_t expand_ch,
           const nn::Conv2dOptions& expand3_opts, const std::string& name,
           const ConvBuilder& build, Rng& rng)
    : out_channels_(2 * expand_ch) {
  nn::Conv2dOptions sq;
  sq.in_channels = in_ch;
  sq.out_channels = squeeze_ch;
  sq.kernel = 1;
  sq.pad = 0;
  sq.qspec = expand3_opts.qspec;
  squeeze_ = register_module<nn::Conv2d>("squeeze", sq, rng);

  nn::Conv2dOptions e1 = sq;
  e1.in_channels = squeeze_ch;
  e1.out_channels = expand_ch;
  expand1_ = register_module<nn::Conv2d>("expand1", e1, rng);

  nn::Conv2dOptions e3 = expand3_opts;
  e3.in_channels = squeeze_ch;
  e3.out_channels = expand_ch;
  expand3_ = build(e3, name + ".expand3");
  register_child("expand3", expand3_);

  bn_ = register_module<nn::BatchNorm2d>("bn", out_channels_);
}

ag::Variable Fire::forward(const ag::Variable& x) {
  ag::Variable s = ag::relu(squeeze_->forward(x));
  ag::Variable a = expand1_->forward(s);
  ag::Variable b = expand3_->forward(s);
  ag::Variable cat = ag::concat({a, b}, 1);
  ag::Variable out = ag::relu(bn_->forward(cat));
  if (training()) {
    // Warm the fire-join observers (values only — QAT leaves the concat in
    // float; deployment requantizes with these frozen ranges).
    expand1_obs_.observe(a.value());
    expand3_obs_.observe(b.value());
    concat_obs_.observe(cat.value());
    out_obs_.observe(out.value());
  }
  return out;
}

std::vector<std::string> SqueezeNet::searchable_layer_names() {
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("fire" + std::to_string(i) + ".expand3");
  return names;
}

SqueezeNet::SqueezeNet(const SqueezeNetConfig& cfg, const ConvBuilder& build, Rng& rng) {
  const float w = cfg.width_mult;
  const std::int64_t stem = scaled_channels(64, w);

  nn::Conv2dOptions in_opts;
  in_opts.in_channels = 3;
  in_opts.out_channels = stem;
  in_opts.qspec = cfg.qspec;
  conv_in_ = register_module<nn::Conv2d>("conv_in", in_opts, rng);
  bn_in_ = register_module<nn::BatchNorm2d>("bn_in", stem);
  pool_ = register_module<nn::MaxPool2d>("pool", 2, 2);

  nn::Conv2dOptions expand3_opts;
  expand3_opts.algo = cfg.algo;
  expand3_opts.qspec = cfg.qspec;
  expand3_opts.flex_transforms = cfg.flex_transforms;

  // SqueezeNet v1.1-style ramp (squeeze, expand) scaled to CIFAR.
  struct FireSpec {
    std::int64_t squeeze, expand;
  };
  const FireSpec specs[8] = {{16, 64},  {16, 64},  {32, 128}, {32, 128},
                             {48, 192}, {48, 192}, {64, 256}, {64, 256}};
  std::int64_t in_ch = stem;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t sq = scaled_channels(specs[i].squeeze, w);
    const std::int64_t ex = scaled_channels(specs[i].expand, w);
    auto fire = std::make_shared<Fire>(in_ch, sq, ex, expand3_opts, "fire" + std::to_string(i),
                                       build, rng);
    register_child("fire" + std::to_string(i), fire);
    fires_.push_back(fire);
    in_ch = fire->out_channels();
  }
  pool_after_ = {1, 3, 5};  // 32 -> 16 -> 8 -> 4

  gap_ = register_module<nn::GlobalAvgPool>("gap");
  fc_ = register_module<nn::Linear>("fc", in_ch, cfg.num_classes, cfg.qspec, rng);
}

ag::Variable SqueezeNet::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn_in_->forward(conv_in_->forward(x)));
  for (std::size_t i = 0; i < fires_.size(); ++i) {
    h = fires_[i]->forward(h);
    if (std::find(pool_after_.begin(), pool_after_.end(), static_cast<int>(i)) !=
        pool_after_.end()) {
      h = pool_->forward(h);
    }
  }
  return fc_->forward(gap_->forward(h));
}

}  // namespace wa::models
