// LeNet-5 with 5x5 filters for the MNIST-shaped experiments (paper Fig. 5).
//
// With r = 5 the Winograd input tiles are large quickly — F(6x6, 5x5) needs
// 10x10 tiles with 9 polynomial points — which is exactly why the paper uses
// this model to stress-test learnable transforms.
#pragma once

#include "models/conv_builder.hpp"
#include "nn/layers.hpp"

namespace wa::models {

struct LeNetConfig {
  int num_classes = 10;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex_transforms = false;
};

class LeNet5 : public nn::Module {
 public:
  LeNet5(const LeNetConfig& cfg, Rng& rng) : LeNet5(cfg, default_builder(rng), rng) {}
  LeNet5(const LeNetConfig& cfg, const ConvBuilder& build, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;

  static std::vector<std::string> searchable_layer_names() { return {"conv1", "conv2"}; }

 private:
  std::shared_ptr<nn::Module> conv1_, conv2_;
  std::shared_ptr<nn::MaxPool2d> pool1_, pool2_;
  std::shared_ptr<nn::Flatten> flatten_;
  std::shared_ptr<nn::Linear> fc1_, fc2_, fc3_;
};

}  // namespace wa::models
