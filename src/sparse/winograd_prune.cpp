#include "sparse/winograd_prune.hpp"

#include <algorithm>
#include <span>
#include <cmath>
#include <stdexcept>

#include "winograd/small_mat.hpp"

namespace wa::sparse {

Tensor transformed_weights(core::WinogradAwareConv2d& layer) {
  const auto& o = layer.options();
  const std::int64_t r = o.kernel;
  const std::int64_t t = layer.input_tile();
  const std::int64_t groups = o.groups;
  const std::int64_t kg = o.out_channels / groups;
  const std::int64_t cg = o.in_channels / groups;
  const Tensor& w = layer.weight().value();
  const float* gm = layer.g_mat().value().raw();

  Tensor u(Shape{groups, t * t, kg, cg});
  for (std::int64_t grp = 0; grp < groups; ++grp) {
    for (std::int64_t k = 0; k < kg; ++k) {
      float tmp[wino::kSmallMatCap], gg[wino::kSmallMatCap];
      for (std::int64_t c = 0; c < cg; ++c) {
        const float* filt = w.raw() + ((grp * kg + k) * cg + c) * r * r;
        wino::smm_sandwich(gm, static_cast<int>(t), static_cast<int>(r), filt, tmp, gg);
        for (std::int64_t ab = 0; ab < t * t; ++ab) {
          u.raw()[((grp * t * t + ab) * kg + k) * cg + c] = gg[ab];
        }
      }
    }
  }
  return u;
}

namespace {

/// Zero the mask at the `count` smallest-magnitude offsets within
/// [begin, begin + len) of u's storage (ties broken by index).
void prune_slice(const std::span<const float> u, std::span<float> mask, std::size_t begin,
                 std::size_t len, std::size_t count) {
  if (count == 0) return;
  std::vector<std::size_t> idx(len);
  for (std::size_t i = 0; i < len; ++i) idx[i] = begin + i;
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(count - 1), idx.end(),
                   [&](std::size_t a, std::size_t b) {
                     const float ma = std::fabs(u[a]), mb = std::fabs(u[b]);
                     return ma < mb || (ma == mb && a < b);
                   });
  for (std::size_t i = 0; i < count; ++i) mask[idx[i]] = 0.F;
}

}  // namespace

Tensor magnitude_mask(const Tensor& u, double sparsity, PruneScheme scheme) {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("magnitude_mask: sparsity must be in [0, 1)");
  }
  if (u.empty()) throw std::invalid_argument("magnitude_mask: empty tensor");
  Tensor mask = Tensor::ones(u.shape());
  const auto d = u.data();
  auto md = mask.data();
  if (scheme == PruneScheme::kGlobal) {
    const auto total = static_cast<std::size_t>(u.numel());
    prune_slice(d, md, 0, total,
                static_cast<std::size_t>(std::floor(sparsity * static_cast<double>(total))));
    return mask;
  }
  // Per-position: one scope per (group, xy) slice of [groups, t², K/g, C/g].
  if (u.dim() != 4) {
    throw std::invalid_argument("magnitude_mask: per-position scheme expects a 4-d U tensor");
  }
  const auto slices = static_cast<std::size_t>(u.size(0) * u.size(1));
  const auto len = static_cast<std::size_t>(u.size(2) * u.size(3));
  const auto per_slice = static_cast<std::size_t>(
      std::floor(sparsity * static_cast<double>(len)));
  for (std::size_t s = 0; s < slices; ++s) prune_slice(d, md, s * len, len, per_slice);
  return mask;
}

PruneReport prune_winograd_layer(core::WinogradAwareConv2d& layer, double sparsity,
                                 const std::string& name, PruneScheme scheme) {
  const Tensor u = transformed_weights(layer);
  Tensor mask = magnitude_mask(u, sparsity, scheme);
  PruneReport report;
  report.layer = name;
  report.target_sparsity = sparsity;
  report.achieved_density =
      static_cast<double>(mask.sum()) / static_cast<double>(mask.numel());
  layer.set_winograd_mask(std::move(mask));
  return report;
}

namespace {

void collect(nn::Module& mod, const std::string& prefix,
             std::vector<std::pair<std::string, core::WinogradAwareConv2d*>>& out) {
  if (auto* wa = dynamic_cast<core::WinogradAwareConv2d*>(&mod)) {
    out.emplace_back(prefix, wa);
  }
  for (const auto& [name, child] : mod.named_children()) {
    collect(*child, prefix.empty() ? name : prefix + "." + name, out);
  }
}

}  // namespace

std::vector<PruneReport> prune_model(nn::Module& root, double sparsity, PruneScheme scheme) {
  std::vector<std::pair<std::string, core::WinogradAwareConv2d*>> layers;
  collect(root, "", layers);
  std::vector<PruneReport> reports;
  reports.reserve(layers.size());
  for (auto& [name, layer] : layers) {
    reports.push_back(prune_winograd_layer(*layer, sparsity, name, scheme));
  }
  return reports;
}

double model_hadamard_density(const nn::Module& root) {
  std::vector<std::pair<std::string, core::WinogradAwareConv2d*>> layers;
  collect(const_cast<nn::Module&>(root), "", layers);
  if (layers.empty()) return 1.0;
  double acc = 0;
  for (const auto& [name, layer] : layers) acc += layer->winograd_density();
  return acc / static_cast<double>(layers.size());
}

}  // namespace wa::sparse
