// Winograd-domain pruning (after Liu, Pool, Han & Dally, ICLR 2018).
//
// The paper's related-work section cites "a technique that enables up to
// 90% sparsity in the Hadamard product stage of the Winograd algorithm,
// effectively reducing by 10x the number of multiplications with no
// accuracy loss in FP32 models". Spatial-domain sparsity does not survive
// the transform (G ĝ Gᵀ densifies a sparse filter), so the pruning must
// happen directly on the transformed weights U — which is what this module
// does, as an optional extension composable with winograd-aware quantized
// training:
//
//   1. train a (winograd-aware) model as usual;
//   2. prune_model() thresholds each layer's U by magnitude to a target
//      sparsity and installs the mask;
//   3. fine-tune — masked Hadamard products stay pruned through the STE;
//   4. the latency model prices the surviving density via
//      LayerDesc::hadamard_density.
#pragma once

#include <string>
#include <vector>

#include "core/wa_conv2d.hpp"
#include "nn/module.hpp"

namespace wa::sparse {

/// Transformed weights U = G g Gᵀ of a layer, [groups, t², K/g, C/g],
/// computed from the layer's current weights and (possibly learned)
/// transforms in FP32 — the tensor the pruning mask thresholds.
Tensor transformed_weights(core::WinogradAwareConv2d& layer);

/// How the magnitude threshold is scoped.
///
/// Winograd-domain weights have strongly position-dependent magnitudes: the
/// Cook-Toom rows scale each tile position (xy) differently, and positions
/// with systematically small U entries meet systematically LARGE V entries
/// at the same position (the B columns amplify inversely). A global
/// threshold therefore wipes out whole tile positions and wrecks the
/// output; thresholding within each position prunes genuinely redundant
/// products. kPerPosition is the default for exactly that reason.
enum class PruneScheme { kPerPosition, kGlobal };

/// 0/1 mask keeping the largest-magnitude `1 - sparsity` fraction of
/// entries — exactly floor(sparsity * slice_size) pruned per scope (ties
/// broken by index, deterministic). `u` is [groups, t², K/g, C/g]; scope is
/// each (group, xy) slice for kPerPosition, the whole tensor for kGlobal.
/// Throws std::invalid_argument for sparsity outside [0, 1).
Tensor magnitude_mask(const Tensor& u, double sparsity,
                      PruneScheme scheme = PruneScheme::kPerPosition);

struct PruneReport {
  std::string layer;
  double target_sparsity = 0;
  double achieved_density = 1;  // surviving fraction of Hadamard products
};

/// Prune one layer in the Winograd domain and install the mask.
PruneReport prune_winograd_layer(core::WinogradAwareConv2d& layer, double sparsity,
                                 const std::string& name = "",
                                 PruneScheme scheme = PruneScheme::kPerPosition);

/// Recursively prune every WinogradAwareConv2d reachable from `root`.
/// Returns one report per pruned layer (depth-first, registration order).
std::vector<PruneReport> prune_model(nn::Module& root, double sparsity,
                                     PruneScheme scheme = PruneScheme::kPerPosition);

/// Mean surviving density across all Winograd-aware layers under `root`
/// (1.0 when none are masked; layers without masks count as dense).
double model_hadamard_density(const nn::Module& root);

}  // namespace wa::sparse
