// Analytic latency model of Arm Cortex-A73 / Cortex-A53 cores.
//
// The paper measures convolution latencies on a HiKey 960 (Table 2 specs)
// with Arm Compute Library kernels. That hardware is not available here, so
// this module models the mechanisms those measurements exhibit:
//
//  * a roofline per stage — time = max(compute, traffic) — with distinct
//    effective throughputs for GEMM vs transform (gather/scatter) code;
//  * Winograd tile-edge waste: P = ceil(oh/m) * ceil(ow/m) tiles, which
//    produces the F4/F6 alternation of Fig. 7 as output size varies;
//  * transform cost derived from the *live* transform matrices: zeros are
//    free, ±1 entries are adds, anything else multiplies — so the learnt
//    (dense) "-flex" transforms automatically cost more (appendix A.2);
//  * a two-level memory system: working sets that fall out of L2 pay DRAM
//    bandwidth, which is what keeps Winograd gains small on the A53 in FP32
//    and lets INT8 (4x smaller traffic) recover them (§6.2, Table 3).
//
// Absolute milliseconds are calibrated constants; the reproduction targets
// are the orderings, crossovers and speedup ratios.
#pragma once

#include <string>
#include <vector>

#include "backend/conv_kernels.hpp"
#include "nn/conv_config.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::latency {

/// Numeric type executed by the kernels (the paper deploys FP32 and INT8;
/// INT16 appears only as a wiNAS-Q search candidate).
enum class DType { kFp32, kInt16, kInt8 };

DType dtype_for(const quant::QuantSpec& spec);
std::string to_string(DType d);

struct CoreSpec {
  std::string name;
  double clock_ghz = 2.0;
  double flops_per_cycle = 8;     // fp32 MAC lanes * 2
  double int8_speedup = 1.5;      // effective MAC throughput multiplier at int8
  double int16_speedup = 1.2;
  double gemm_efficiency = 0.30;  // fraction of peak sustained by GEMM
  double transform_efficiency = 0.30;  // transform arithmetic (rarely binds)
  /// Winograd transforms gather/scatter across a wide memory area (A.2);
  /// they are predominantly bandwidth-bound, especially on the A53.
  double transform_gbps = 3.0;
  /// Fixed overhead per GEMM kernel invocation. Winograd runs t² small GEMMs
  /// per layer; with few input channels these GEMMs are tiny and the
  /// overhead dominates — why input layers never benefit (Fig. 7).
  double gemm_call_overhead_us = 0.4;
  /// Fixed gather/scatter overhead per (tile, channel) transform: index
  /// arithmetic, edge multiplexing, strided cache-line touches. Mostly — but
  /// not entirely — independent of element width. This term is what makes
  /// transforms 65-75% of the input-layer cost (Fig. 8).
  double transform_tile_overhead_us = 0.15;
  /// Winograd's t² sliced GEMMs sustain less of peak than one large im2row
  /// GEMM (smaller tiles, strided operands). Multiplies gemm_efficiency.
  double winograd_gemm_derate = 0.72;
  double lowering_gbps = 4.0;     // effective copy bandwidth for im2row/im2col
  double l2_kb = 1024;
  double l2_gbps = 12.0;          // streaming bandwidth when resident in L2
  double dram_gbps = 5.0;         // streaming bandwidth when spilling
};

/// High-performance out-of-order core (Table 2: 2.4 GHz, 64 KB L1, 2 MB L2).
CoreSpec cortex_a73();
/// High-efficiency in-order core (Table 2: 1.8 GHz, 32 KB L1, 512 KB L2).
CoreSpec cortex_a53();

/// Per-stage latency decomposition (Fig. 8's stacked bars).
struct StageBreakdown {
  double lowering_ms = 0;          // im2row/im2col patch materialisation
  double input_transform_ms = 0;   // Bᵀ d B
  double gemm_ms = 0;              // the GEMM / Hadamard stage
  double output_transform_ms = 0;  // Aᵀ M A
  double total_ms() const {
    return lowering_ms + input_transform_ms + gemm_ms + output_transform_ms;
  }
};

/// A convolution layer as the latency model sees it.
struct LayerDesc {
  backend::ConvGeometry geom;
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  DType dtype = DType::kFp32;
  /// Learnt transforms are dense: the A.2 overhead. Ignored for non-Winograd.
  bool dense_transforms = false;
  /// Surviving fraction of Hadamard products under Winograd-domain pruning
  /// (Liu et al. 2018; src/sparse). Scales the Hadamard-stage flops and the
  /// transformed-weight traffic of a sparsity-aware GEMM. 1.0 = dense.
  double hadamard_density = 1.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(CoreSpec spec) : spec_(std::move(spec)) {}
  const CoreSpec& spec() const { return spec_; }

  /// Latency of one convolution layer (batch from geom; the paper uses 1).
  StageBreakdown conv_cost(const LayerDesc& layer) const;

  /// Sum over layers.
  double network_cost_ms(const std::vector<LayerDesc>& layers) const;

 private:
  double effective_gflops(DType d, double efficiency) const;
  double bandwidth_gbps(double working_set_bytes) const;
  static double element_bytes(DType d);

  CoreSpec spec_;
};

/// Cost in scalar ops of applying `mat` to one column vector, derived from
/// its sparsity: zero entries free, ±1 entries one add, general entries one
/// multiply-add. The basis of the dense-transform overhead.
double row_op_cost(const Tensor& mat);

}  // namespace wa::latency
