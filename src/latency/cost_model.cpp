#include "latency/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wa::latency {

DType dtype_for(const quant::QuantSpec& spec) {
  if (spec.is_float()) return DType::kFp32;
  if (spec.bits > 8) return DType::kInt16;  // 10..16-bit paths execute as int16
  return DType::kInt8;
}

std::string to_string(DType d) {
  switch (d) {
    case DType::kFp32: return "fp32";
    case DType::kInt16: return "int16";
    case DType::kInt8: return "int8";
  }
  return "?";
}

CoreSpec cortex_a73() {
  CoreSpec s;
  s.name = "Cortex-A73";
  s.clock_ghz = 2.4;
  s.flops_per_cycle = 8;      // 2x 64-bit NEON FMA pipes
  s.int8_speedup = 1.7;       // SMLAL-based int8 GEMM (no SDOT on A73)
  s.int16_speedup = 1.25;
  s.gemm_efficiency = 0.28;
  s.transform_efficiency = 0.30;
  s.transform_gbps = 2.0;
  s.gemm_call_overhead_us = 0.3;
  s.transform_tile_overhead_us = 0.22;
  s.lowering_gbps = 5.5;
  s.l2_kb = 2048;
  s.l2_gbps = 16.0;
  s.dram_gbps = 6.5;
  return s;
}

CoreSpec cortex_a53() {
  CoreSpec s;
  s.name = "Cortex-A53";
  s.clock_ghz = 1.8;
  s.flops_per_cycle = 8;      // NEON present but in-order: efficiency is lower
  s.int8_speedup = 1.05;      // Table 3: int8 im2row shows no speedup on A53
  s.int16_speedup = 1.0;
  s.gemm_efficiency = 0.24;
  s.transform_efficiency = 0.30;
  s.transform_gbps = 0.8;     // in-order core: gather/scatter hurts badly
  s.gemm_call_overhead_us = 0.6;
  s.transform_tile_overhead_us = 0.45;
  s.lowering_gbps = 3.0;
  s.l2_kb = 512;
  s.l2_gbps = 8.0;
  s.dram_gbps = 2.6;
  return s;
}

double row_op_cost(const Tensor& mat) {
  const auto c = wino::matrix_cost(mat);
  // adds weigh 1, general entries weigh 2 (multiply + accumulate).
  return static_cast<double>(c.plus_minus_one) + 2.0 * static_cast<double>(c.general);
}

double LatencyModel::element_bytes(DType d) {
  switch (d) {
    case DType::kFp32: return 4;
    case DType::kInt16: return 2;
    case DType::kInt8: return 1;
  }
  return 4;
}

double LatencyModel::effective_gflops(DType d, double efficiency) const {
  double peak = spec_.clock_ghz * spec_.flops_per_cycle;
  switch (d) {
    case DType::kFp32: break;
    case DType::kInt16: peak *= spec_.int16_speedup; break;
    case DType::kInt8: peak *= spec_.int8_speedup; break;
  }
  return peak * efficiency;
}

double LatencyModel::bandwidth_gbps(double working_set_bytes) const {
  return working_set_bytes <= spec_.l2_kb * 1024.0 ? spec_.l2_gbps : spec_.dram_gbps;
}

namespace {
/// time in ms for `flops` at `gflops` effective, or `bytes` at `gbps`,
/// whichever dominates (roofline).
double roofline_ms(double flops, double gflops, double bytes, double gbps) {
  const double compute_ms = flops / (gflops * 1e9) * 1e3;
  const double memory_ms = bytes / (gbps * 1e9) * 1e3;
  return std::max(compute_ms, memory_ms);
}

/// GEMM sustained-throughput derating for short reduction dimensions: with
/// k accumulation steps there is little register/cache reuse and the kernel
/// prologue dominates. This is why Winograd's [K, 3] x [3, P] input-layer
/// GEMMs are slow in practice (Fig. 7's first column).
double k_dim_efficiency(double k_dim) {
  constexpr double k_half = 12.0;  // k at which half the peak is reached
  return k_dim / (k_dim + k_half);
}
}  // namespace

StageBreakdown LatencyModel::conv_cost(const LayerDesc& layer) const {
  const auto& g = layer.geom;
  g.validate();
  StageBreakdown out;
  const double esize = element_bytes(layer.dtype);
  const double oh = static_cast<double>(g.out_height());
  const double ow = static_cast<double>(g.out_width());
  const double n = static_cast<double>(g.batch);
  const double cin = static_cast<double>(g.in_channels);
  const double cout = static_cast<double>(g.out_channels);
  const double r = static_cast<double>(g.kernel);
  const double groups = static_cast<double>(g.groups);

  const double gemm_gflops = effective_gflops(layer.dtype, spec_.gemm_efficiency);
  const double tf_gflops = effective_gflops(layer.dtype, spec_.transform_efficiency);

  if (!nn::is_winograd(layer.algo)) {
    // ---- GEMM-lowered (im2row / im2col / direct) -------------------------
    const double patches = n * oh * ow;
    const double patch_len = (cin / groups) * r * r;
    // Lowering: read input once, write the patch matrix (r² duplication).
    const double lower_bytes = (n * cin * g.height * g.width + patches * patch_len * groups) * esize;
    // im2col's column-major patches stride badly on row-major tensors.
    const double lower_penalty = layer.algo == nn::ConvAlgo::kIm2col ? 1.6 : 1.0;
    out.lowering_ms = lower_bytes * lower_penalty / (spec_.lowering_gbps * 1e9) * 1e3;

    const double flops = 2.0 * patches * patch_len * cout;
    const double gemm_bytes =
        (patches * patch_len * groups + cout * patch_len + patches * cout) * esize;
    double eff = gemm_gflops * k_dim_efficiency(patch_len);
    if (layer.algo == nn::ConvAlgo::kDirect) eff *= 0.45;
    out.gemm_ms = roofline_ms(flops, eff, gemm_bytes, bandwidth_gbps(gemm_bytes));
    return out;
  }

  // ---- Winograd F(m x m, r x r) -------------------------------------------
  if (groups != 1) {
    // Grouped Winograd executes as `groups` independent convolutions.
    LayerDesc sub = layer;
    sub.geom.in_channels = g.in_channels / g.groups;
    sub.geom.out_channels = g.out_channels / g.groups;
    sub.geom.groups = 1;
    const StageBreakdown one = conv_cost(sub);
    out.lowering_ms = one.lowering_ms * groups;
    out.input_transform_ms = one.input_transform_ms * groups;
    out.gemm_ms = one.gemm_ms * groups;
    out.output_transform_ms = one.output_transform_ms * groups;
    return out;
  }

  const int m = nn::winograd_m(layer.algo);
  const int t = m + static_cast<int>(g.kernel) - 1;
  const wino::Transforms tr = wino::make_transforms(m, static_cast<int>(g.kernel));
  const double th = std::ceil(oh / m), tw = std::ceil(ow / m);
  const double tiles = n * th * tw;  // includes the edge waste driving Fig. 7

  // Transform op counts from matrix sparsity. Dense (learnt) transforms pay
  // a multiply-add per entry AND lose the specialised shift/add kernels,
  // which also costs extra coefficient traffic (appendix A.2).
  const auto dense_cost = [&](const Tensor& mat) {
    return 2.0 * static_cast<double>(mat.numel());
  };
  const double bt_row_cost = layer.dense_transforms ? dense_cost(tr.bt_mat) : row_op_cost(tr.bt_mat);
  const double at_row_cost = layer.dense_transforms ? dense_cost(tr.at_mat) : row_op_cost(tr.at_mat);
  // Dense transforms stream their (non-±1) coefficients and lose the
  // specialised shift/add kernels: noticeably more traffic per tile.
  const double dense_traffic = layer.dense_transforms ? 2.2 : 1.0;

  // Per-(tile, channel) gather overhead, shrinking mildly with element size.
  const double tile_ovh_ms =
      spec_.transform_tile_overhead_us * 1e-3 * (0.5 + 0.5 * esize / 4.0);

  // Input transform: V = Bᵀ d B per (channel, tile): two t×t matrix applies,
  // (t + t) * row_cost ops; plus streaming the tiles in and V out.
  {
    const double flops = tiles * cin * 2.0 * t * bt_row_cost;
    const double bytes = (tiles * cin * t * t * 2.0) * esize * dense_traffic;
    out.input_transform_ms =
        roofline_ms(flops, tf_gflops, bytes, spec_.transform_gbps) + tiles * cin * tile_ovh_ms;
  }

  // Hadamard/GEMM stage: t² GEMMs of [K, C] x [C, tiles]. Each slice is a
  // separate (often tiny) GEMM call with fixed overhead. Winograd-domain
  // pruning (src/sparse) skips masked products: flops and transformed-weight
  // traffic scale with the surviving density, V/M traffic does not.
  {
    const double density = std::clamp(layer.hadamard_density, 0.0, 1.0);
    const double flops = 2.0 * t * t * cout * cin * tiles * density;
    const double u_bytes = t * t * cout * cin * esize * density;  // 4x blow-up at F4, compressed
    const double v_bytes = t * t * cin * tiles * esize;
    const double m_bytes = t * t * cout * tiles * esize;
    const double bytes = u_bytes + v_bytes + m_bytes;
    out.gemm_ms = roofline_ms(flops, gemm_gflops * spec_.winograd_gemm_derate * k_dim_efficiency(cin),
                              bytes, bandwidth_gbps(bytes)) +
                  t * t * spec_.gemm_call_overhead_us * 1e-3;
  }

  // Output transform: Y = Aᵀ M A per (filter, tile): (t + m) * row_cost ops.
  {
    const double flops = tiles * cout * (t + m) * at_row_cost;
    const double bytes = (tiles * cout * (t * t + m * m)) * esize * dense_traffic;
    out.output_transform_ms =
        roofline_ms(flops, tf_gflops, bytes, spec_.transform_gbps) + tiles * cout * tile_ovh_ms;
  }
  return out;
}

double LatencyModel::network_cost_ms(const std::vector<LayerDesc>& layers) const {
  double total = 0;
  for (const auto& l : layers) total += conv_cost(l).total_ms();
  return total;
}

}  // namespace wa::latency
