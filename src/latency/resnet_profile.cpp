#include "latency/resnet_profile.hpp"

#include <cmath>

namespace wa::latency {

namespace {
std::int64_t scaled(std::int64_t base, float mult) {
  return std::max<std::int64_t>(1, std::llround(static_cast<double>(base) * mult));
}

backend::ConvGeometry conv3x3(std::int64_t cin, std::int64_t cout, std::int64_t hw) {
  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = cin;
  g.out_channels = cout;
  g.height = hw;
  g.width = hw;
  g.kernel = 3;
  g.pad = 1;
  return g;
}

backend::ConvGeometry conv1x1(std::int64_t cin, std::int64_t cout, std::int64_t hw) {
  backend::ConvGeometry g = conv3x3(cin, cout, hw);
  g.kernel = 1;
  g.pad = 0;
  return g;
}
}  // namespace

std::vector<ProfiledLayer> resnet18_conv_layers(float width_mult, std::int64_t image) {
  std::vector<ProfiledLayer> layers;
  const std::int64_t stem = scaled(32, width_mult);
  const std::int64_t ch[4] = {scaled(64, width_mult), scaled(128, width_mult),
                              scaled(256, width_mult), scaled(512, width_mult)};

  layers.push_back({"conv_in", conv3x3(3, stem, image), false});

  std::int64_t in_ch = stem;
  std::int64_t hw = image;
  for (int stage = 1; stage <= 4; ++stage) {
    const std::int64_t out_ch = ch[stage - 1];
    if (stage > 1) hw /= 2;  // max-pool before the stage's first conv
    for (int block = 0; block < 2; ++block) {
      const std::string base = "stage" + std::to_string(stage) + ".block" + std::to_string(block);
      layers.push_back({base + ".conv1", conv3x3(in_ch, out_ch, hw), true});
      layers.push_back({base + ".conv2", conv3x3(out_ch, out_ch, hw), true});
      if (in_ch != out_ch) {
        layers.push_back({base + ".shortcut", conv1x1(in_ch, out_ch, hw), false});
      }
      in_ch = out_ch;
    }
  }
  return layers;
}

}  // namespace wa::latency
