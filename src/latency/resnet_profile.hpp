// Static layer-geometry profile of the paper's modified ResNet-18.
//
// The latency benches (Fig. 8, Table 3) and wiNAS need every convolution's
// tensor shapes without instantiating a trained model. Names match
// models::ResNet18::searchable_layer_names() so per-layer assignments can be
// moved between the searcher, the trainer and the latency model.
#pragma once

#include <string>
#include <vector>

#include "backend/conv_kernels.hpp"

namespace wa::latency {

struct ProfiledLayer {
  std::string name;
  backend::ConvGeometry geom;
  /// 3x3 convolutions eligible for Winograd (the wiNAS search space);
  /// the input layer and 1x1 shortcuts are fixed to im2row.
  bool searchable = false;
};

/// All convolutions of the modified ResNet-18 (input conv, 16 block convs,
/// 3 projection shortcuts) for a given width multiplier and input size.
/// Batch is 1 (the paper's deployment scenario).
std::vector<ProfiledLayer> resnet18_conv_layers(float width_mult, std::int64_t image = 32);

}  // namespace wa::latency
