// Int8 deployment pipeline: run a trained (QAT) network entirely with the
// integer backend kernels.
//
// This is the end of the paper's story: winograd-aware training exists so
// that the *deployed* network can execute Winograd convolutions in int8 on
// integer hardware. The pipeline freezes the scales the training observers
// learned, folds biases, and executes conv / relu / pool / linear stages on
// int8 levels, with int32 accumulators and fixed-point requantization —
// the contract the integration tests check against the QAT forward pass.
//
// Topology is a compiled graph, not just a stage list: every stage reads
// from named activation slots (an empty name chains it to the previous
// stage's output, so sequential pipelines look exactly like before) and can
// publish its result under a name for later consumers. That is what lets a
// residual network deploy: the block input is published once, the main path
// chains through conv/bn stages, and an AddStage joins it with the skip
// branch — requantizing both onto a common scale with fixed-point
// multipliers — before ReLU.
//
// On top of the compiled graph sits a compiler middle-end
// (src/deploy/passes): a pass manager that fuses standalone relu / requant /
// batch-norm stages into their producing conv/linear/add stage (as in-place
// *epilogue ops*, so the intermediate tensor never round-trips through a
// slot), eliminates dead stages, and computes a static memory plan —
// per-value live ranges over the schedule, an arena offset assignment with
// buffer reuse (in-place residual add where a branch dies at the join,
// in-place convolution where the input dies inside the kernel), and the
// resulting peak activation byte count. The plan travels with the pipeline
// (serialized in .wam v2) and run() honors it; optimized execution is
// bit-identical to unoptimized execution (locked down by
// tests/test_pipeline_fuzz.cpp).
//
// Two compilers are provided: compile_lenet (sequential, the paper's
// 5x5-filter model) and compile_resnet18 (residual, the paper's
// pool-instead-of-stride ResNet-18 — Tables 2-3's workload).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "backend/conv_kernels_s8.hpp"
#include "deploy/int8_ops.hpp"
#include "models/lenet.hpp"
#include "models/resnet.hpp"
#include "models/resnext.hpp"
#include "models/squeezenet.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wa::deploy {

/// One convolution stage with frozen quantization parameters.
struct ConvStage {
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t pad = 1;
  std::int64_t groups = 1;  // grouped conv (ResNeXt cardinality); divides C and K
  std::int64_t stride = 1;  // 1, or 2 for the polyphase strided-Winograd path
  float input_scale = 0.F;         // activation scale frozen from the observer
  backend::QTensor weights_q;      // int8 weights (GEMM path), [K, C/g, r, r]
  Tensor weights_f;                // fp32 weights (Winograd path transforms live)
  wino::Transforms transforms;     // Winograd only (possibly learned/dense)
  backend::WinogradStageScales stage_scales;  // Winograd only
  float output_scale = -1.F;       // frozen Qx(y) scale
  Tensor bias;                     // may be empty
  Tensor sparse_mask;              // winograd_prune tap mask [g, t², K/g, C/g]; empty = dense
  bool relu_after = false;

  // Weight caches built once at load (Int8Pipeline::push calls prepare()):
  // the Winograd path never recomputes U = G g Gᵀ per forward, the GEMM path
  // never re-transposes its weight matrix per forward. A stride-2 Winograd
  // stage builds the polyphase cache (strided_cache) instead of wino_cache.
  backend::WinogradWeightsS8 wino_cache;
  backend::StridedWinogradWeightsS8 strided_cache;
  backend::Im2rowWeightsS8 im2row_cache;
  bool prepared() const {
    return !wino_cache.empty() || !strided_cache.empty() || !im2row_cache.empty();
  }
  void prepare();
};

struct PoolStage {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
};

struct FlattenStage {};

/// Global average pool [N,C,H,W] -> [N,C] on levels (global_avg_pool_s8).
struct AvgPoolStage {};

struct LinearStage {
  float input_scale = 0.F;
  backend::QTensor weights_q;
  Tensor bias;
  float output_scale = -1.F;
  bool relu_after = false;

  // Packed [F, O] weights built once at Int8Pipeline::push — the per-forward
  // GEMM never re-transposes the weight matrix.
  LinearWeightsS8 packed;
  bool prepared() const { return !packed.empty(); }
  void prepare();
};

/// Deployed batch-norm: per-channel integer affine on levels. Used when the
/// producing convolution's output scale is pinned by a training-time
/// observer (the Winograd Qx(y) stage), where folding gamma into the weights
/// would invalidate the frozen per-stage scales. GEMM convolutions fold
/// batch-norm into their weights at compile time instead and never emit this
/// stage. The fusion pass folds a chained BnStage into its producer as an
/// in-place affine epilogue.
struct BnStage {
  float input_scale = 0.F;   // expected incoming scale
  Tensor scale;              // per-channel A = gamma / sqrt(var + eps)
  Tensor bias;               // per-channel B = beta - A * mean
  float output_scale = -1.F;
  bool relu_after = false;

  ChannelAffineS8 affine;  // prepared at push
  bool prepared() const { return !affine.empty(); }
  void prepare();
};

/// Level-aligned residual join: requantizes both branches onto output_scale
/// with fixed-point multipliers, sums in int64, optionally fuses ReLU.
struct AddStage {
  float lhs_scale = 0.F;  // expected scale of the first operand
  float rhs_scale = 0.F;  // expected scale of the second operand
  float output_scale = -1.F;
  bool relu_after = true;

  RequantRatio lhs_ratio, rhs_ratio;  // prepared at push
  bool prepared_ = false;
  bool prepared() const { return prepared_; }
  void prepare();
};

/// Channel-concatenation join (the SqueezeNet fire-module merge): requantizes
/// both operands onto output_scale with fixed-point multipliers and writes
/// them into adjacent channel ranges of a fresh [N, C1+C2, H, W] tensor —
/// the level-aligned mirror of AddStage for fan-in by concatenation.
struct ConcatStage {
  float lhs_scale = 0.F;  // expected scale of the first operand
  float rhs_scale = 0.F;  // expected scale of the second operand
  float output_scale = -1.F;
  bool relu_after = false;

  RequantRatio lhs_ratio, rhs_ratio;  // prepared at push
  bool prepared_ = false;
  bool prepared() const { return prepared_; }
  void prepare();
};

/// Standalone ReLU on levels: max(0, x), scale unchanged (exact — symmetric
/// quantization maps level 0 to real 0). The compilers fuse ReLU into their
/// conv/linear stages via relu_after; this stage exists for hand-assembled
/// graphs and is folded into its producer by the fusion pass.
struct ReluStage {};

/// Standalone fixed-point requantization: remap int8 levels from
/// input_scale to output_scale through a prepared Q31 multiplier (the same
/// primitive AddStage uses per branch). Folded into its producer by the
/// fusion pass so the remapped tensor never round-trips through a slot.
struct RequantStage {
  float input_scale = 0.F;
  float output_scale = -1.F;

  RequantRatio ratio;  // prepared at push
  bool prepared_ = false;
  bool prepared() const { return prepared_; }
  void prepare();
};

// ConcatStage appends at the END: the variant tag order is the .wam wire
// contract for pre-v5 readers of the earlier kinds.
using Stage = std::variant<ConvStage, PoolStage, FlattenStage, AvgPoolStage, LinearStage,
                           BnStage, AddStage, ReluStage, RequantStage, ConcatStage>;

/// Dataflow wiring of one stage. Empty `input` reads the previous stage's
/// output (sequential chaining); a named input reads an activation slot
/// published by an earlier stage. `input2` is the second operand of a
/// two-operand join (AddStage / ConcatStage — required there, rejected
/// elsewhere). A named `output` publishes the result into a slot for later
/// consumers instead of chaining it.
struct StageIO {
  std::string input;
  std::string input2;
  std::string output;
  std::string label;  // for error messages and per-stage profiling
};

/// One fused post-op applied IN PLACE to a producing stage's int8 output —
/// what the fusion pass turns a standalone ReluStage / RequantStage /
/// BnStage into. Applying the epilogue list in order is arithmetically
/// identical to running the folded stages standalone (same element ops, same
/// rounding); the only difference is that no intermediate tensor is
/// materialized into a slot.
struct EpilogueOp {
  enum class Kind : std::uint8_t { kRelu = 0, kRequant = 1, kAffine = 2 };
  Kind kind = Kind::kRelu;
  // kRequant: fixed-point remap onto out_scale.
  RequantRatio ratio;
  float out_scale = -1.F;
  // kAffine: per-channel integer affine (deployed batch-norm), optional
  // fused ReLU; the affine carries its own out_scale.
  ChannelAffineS8 affine;
  bool relu = false;
};

/// Per-stage wall-clock of one profiled forward (Int8Pipeline::run).
struct StageTiming {
  std::string label;
  double ms = 0.0;
};

/// Static memory plan computed by the planner pass (src/deploy/passes) for a
/// reference input shape: per-value sizes and live ranges over the schedule,
/// a single-arena offset assignment with buffer reuse, and the resulting
/// peak. "Values" are the dataflow results: value 0 is the quantized
/// pipeline input, value i+1 is stage i's output. Activation bytes are the
/// int8 tensors that travel BETWEEN stages; kernel-internal scratch (the
/// per-thread ScratchArena) is accounted separately and unchanged by the
/// plan.
struct MemoryPlan {
  Shape reference_input;                  // shape sizes/offsets were computed for
  std::vector<std::int64_t> value_bytes;  // per value, at the reference shape
  std::vector<std::int64_t> offsets;      // per value: arena offset (reused buffers share one)
  std::vector<std::int32_t> last_use;     // per value: last consuming stage, -1 = never read
  /// Per stage: 0 = fresh output buffer, 1 = write the output into the first
  /// operand's storage, 2 = into the second operand's (AddStage only). Only
  /// honored when the operand actually dies at this stage and fits.
  std::vector<std::uint8_t> in_place;
  std::int64_t arena_bytes = 0;       // contiguous first-fit layout size
  std::int64_t peak_bytes = 0;        // planned live-byte high-water (run() measures this)
  std::int64_t naive_peak_bytes = 0;  // same schedule without the plan, reference shape
  bool empty() const { return in_place.empty(); }
};

/// Counters one run() fills when asked: measured activation-buffer traffic.
/// peak_activation_bytes is the high-water mark of live inter-stage buffers
/// (by vector capacity), the quantity MemoryPlan::peak_bytes predicts.
/// Kernel-internal scratch is excluded by definition — in particular the
/// blocked Winograd executor's per-thread tile slab (conv_kernels_s8.hpp)
/// lives in the ScratchArena, not in an inter-stage buffer, so the
/// measured-peak == planned-peak equality holds on both executor paths.
struct RunStats {
  std::int64_t peak_activation_bytes = 0;
  std::int64_t allocated_bytes = 0;  // fresh activation buffers allocated
  std::int64_t inplace_reuses = 0;   // outputs written into a dying operand
  std::int64_t input_copies = 0;     // borrowed inputs copied for a rescale
};

/// A compiled integer-only network: the deployment-side inference engine.
///
/// push() finalises each stage at load time (weight transform + quantize +
/// repack happen exactly once); run() then executes the scatter -> batched
/// GEMM -> gather hot path allocation-free out of per-thread scratch arenas,
/// resolving slot reads/writes as it walks the schedule and honoring the
/// memory plan's buffer reuse when one is attached.
///
/// ## Thread-safety contract (audited for the serving runtime, src/serve)
///
/// `run()`, `run_batched()` and `classify()` are safe to call concurrently
/// from any number of threads on the same pipeline, because the const run
/// path touches no shared mutable state:
///   - stages, epilogues and the memory plan are immutable after
///     push()/freeze_scales()/set_plan() — the run loop only reads frozen
///     scales, prepared weight caches and fixed-point multipliers;
///   - every intermediate (activation slots, lowered patch matrices, int32
///     accumulators, Winograd V/M/Y tiles) is either a local QTensor or
///     lives in the calling thread's ScratchArena (one bump allocator per
///     OS thread, including OpenMP workers — growth never crosses threads);
///   - the plan's in-place reuse rewires buffers that are themselves
///     per-call locals, so concurrent runs never share an activation;
///   - the only global writes are the backend::PerfCounters relaxed atomics,
///     which are monotone counters: concurrent bumps cannot tear, and a
///     flat window observed around concurrent forwards proves no thread
///     re-transformed or repacked weights;
///   - per-stage timing writes (each Node's telemetry::EmaNs, and span
///     emission into the tracer's per-thread rings for traced runs) are
///     relaxed atomics / thread-local rings: concurrent runs may interleave
///     EMA blends (a smoothed estimate tolerates a lost update) but never
///     race on the stage data itself;
///   - stages with *dynamic* scales (output_scale <= 0, resolved from each
///     batch's own statistics) are still data-race-free — the derived scale
///     is a per-call local — but they are batch-composition dependent, so a
///     server must freeze_scales() before coalescing unrelated requests.
/// The mutating members — push(), freeze_scales(), set_plan() — are NOT safe
/// to race with anything, including each other: complete all
/// loading/freezing/optimizing before publishing the pipeline to worker
/// threads (the server does this under its registry lock).
class Int8Pipeline {
 public:
  /// One compiled stage plus its dataflow wiring and fused epilogue ops;
  /// exposed read-only so the artifact writer (src/serve) can serialize a
  /// pipeline stage-by-stage and the passes (src/deploy/passes) can rewrite
  /// the graph.
  struct Node {
    Stage op;
    StageIO io;
    std::vector<EpilogueOp> epilogue;
    /// Always-available smoothed per-stage latency, fed by every run() while
    /// metrics are enabled (telemetry::metrics_enabled()); mutable because
    /// observing a timing does not change the compiled graph. Copied nodes
    /// (take_nodes + re-push) carry their EMA along.
    mutable telemetry::EmaNs ema;
  };

  void push(Stage s) { push(std::move(s), StageIO{}); }
  void push(Stage s, StageIO io) { push(std::move(s), std::move(io), {}); }
  /// Full form: the loader and the passes re-push nodes with their fused
  /// epilogues. Pushing invalidates any attached memory plan (stage indices
  /// shift); re-run the planner afterwards.
  void push(Stage s, StageIO io, std::vector<EpilogueOp> epilogue);
  std::size_t size() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Move the node list out (leaving the pipeline empty, plan cleared) so a
  /// pass can rewrite the graph without copying the weight caches; re-push
  /// the rewritten nodes to re-validate the wiring.
  std::vector<Node> take_nodes();

  /// Dataflow wiring resolved to value indices: value 0 is the quantized
  /// pipeline input, value i+1 is stage i's output. Throws
  /// std::invalid_argument (labeled with the stage) for graphs whose wiring
  /// is inconsistent — including, when `reject_dead` (the default, what
  /// run() enforces), published slots no stage ever consumes. The
  /// dead-stage-elimination pass resolves with reject_dead = false to find
  /// and remove exactly those stages.
  struct Wiring {
    std::vector<std::int32_t> in1;       // per stage: first operand value, -1 none
    std::vector<std::int32_t> in2;       // per stage: second operand value, -1 none
    std::vector<std::int32_t> last_use;  // per value: last consuming stage, -1 never
    std::vector<std::int32_t> use_count; // per value
  };
  Wiring resolve_wiring(bool reject_dead = true) const;

  /// Attach / inspect the static memory plan (computed by
  /// passes::optimize_pipeline). set_plan validates the plan's dimensions
  /// against the current schedule and throws std::invalid_argument on
  /// mismatch. run() honors the plan's in-place marks; a pipeline without a
  /// plan executes every stage into a fresh buffer (the planner-off
  /// baseline).
  void set_plan(MemoryPlan plan);
  const MemoryPlan* plan() const { return plan_.has_value() ? &*plan_ : nullptr; }
  void clear_plan() { plan_.reset(); }

  /// Run a float input end-to-end; returns dequantized logits [N, classes].
  /// Activations stay int8 between stages. When `timings` is non-null it is
  /// filled with one entry per stage (label + milliseconds); when `stats` is
  /// non-null it is filled with this run's activation-memory counters.
  ///
  /// A valid `trace` context makes the run emit one `stage:<label>` span per
  /// stage plus scatter/gemm/requant/gather sub-spans for blocked Winograd
  /// convs into the telemetry tracer — logits are bit-identical traced or
  /// not (timing never touches the arithmetic).
  Tensor run(const Tensor& input, std::vector<StageTiming>* timings = nullptr,
             RunStats* stats = nullptr, telemetry::TraceContext trace = {}) const;

  /// run() with the batch split into micro-batches of at most `micro_batch`
  /// inputs. Caps the activation working set so a serving-sized batch stays
  /// inside the cache hierarchy (and inside a bounded arena) instead of
  /// scaling every intermediate with the full batch. micro_batch <= 0 runs
  /// the whole batch at once.
  ///
  /// Bit-identical to run() — and per-sample independent of how samples are
  /// grouped — which is only well-defined when every stage scale is frozen
  /// (> 0). A stage left with a dynamic scale (e.g. the final logits stage
  /// of compile_lenet) would derive it from each micro-batch's own
  /// statistics, letting coalesced batches of unrelated requests perturb
  /// each other's logits; splitting such a pipeline therefore throws
  /// std::invalid_argument naming the offending stages. Call
  /// freeze_scales() first (the serving load path does).
  Tensor run_batched(const Tensor& input, std::int64_t micro_batch) const;

  /// Argmax class per batch row.
  std::vector<std::int64_t> classify(const Tensor& input) const;

  /// Labels of stages whose output is NOT deterministic per sample: any
  /// stage with a dynamic output scale (output_scale <= 0, requantized from
  /// each batch's accumulator abs-max), a Winograd stage with a dynamic
  /// internal V/M scale, or a dynamic pipeline input scale (the input
  /// quantizer derives its scale from the whole batch). Empty means run()
  /// results are independent of batch composition.
  std::vector<std::string> dynamic_scale_labels() const;
  bool all_scales_frozen() const { return dynamic_scale_labels().empty(); }

  /// Comma-join of stage labels (e.g. dynamic_scale_labels()) for
  /// diagnostics — shared by the engine and the serving registry so their
  /// error messages stay in step.
  static std::string join_labels(const std::vector<std::string>& labels);

  /// Freeze every dynamic *output* scale (and the input quantizer's scale)
  /// to the value one forward over `calibration` derives, making every later
  /// run() batch-composition independent and run_batched() bit-identical to
  /// run(). A forward over the calibration batch itself is bit-identical
  /// before and after freezing (the captured scale is exactly the scale
  /// that forward derived). Winograd stages with dynamic *internal* scales
  /// (input_transformed / hadamard <= 0) cannot be frozen from the outside
  /// — those scales never leave the kernel — so they throw here: deploy
  /// them with observer-frozen stage scales as compile_lenet /
  /// compile_resnet18 do. Not thread-safe; call before publishing the
  /// pipeline to workers. Freeze BEFORE running the optimizer: fusion and
  /// the planner's copy analysis key off frozen scales.
  void freeze_scales(const Tensor& calibration);

 private:
  Tensor run_impl(const Tensor& input, std::vector<StageTiming>* timings,
                  std::vector<float>* out_scales, RunStats* stats,
                  telemetry::TraceContext trace) const;

  std::vector<Node> nodes_;
  std::optional<MemoryPlan> plan_;
};

/// Readable stage position for error messages: the io label when set, else
/// "stage <i> (<type>)". Shared by the engine, the passes and the loaders.
std::string stage_where(const Int8Pipeline::Node& node, std::size_t index);

/// Whether remapping levels from `current` onto `target` would change them —
/// the exact complement of rescale_s8's identity short-circuit. The executor
/// uses it to decide when a borrowed activation must be copied, and the
/// memory planner MUST use the same predicate so its copy analysis matches
/// execution byte for byte.
bool rescale_changes_levels(float current, float target);

/// Compile a trained LeNet-5 (any conv algorithm, any flex/static
/// transforms) into an integer pipeline. The model must have been trained
/// or calibrated with qspec INT8 so its observers carry ranges; call
/// model.set_training(false) first. Throws std::invalid_argument when a
/// layer type is not supported or observers were never warmed up.
Int8Pipeline compile_lenet(models::LeNet5& model);

/// Compile a trained (or calibrated) ResNet-18 — the paper's
/// pool-instead-of-stride variant — into an integer pipeline: residual
/// skip-adds run level-aligned in int8, projection shortcuts and the stem
/// fold their batch-norm into the quantized weights, Winograd block convs
/// keep their frozen per-stage Qx scales and apply batch-norm as a
/// per-channel integer affine. Same calibration requirements as
/// compile_lenet (block branch observers included).
Int8Pipeline compile_resnet18(models::ResNet18& model);

/// Compile a trained (or calibrated) SqueezeNet: each fire module deploys as
/// squeeze conv → two parallel expand convs reading the published squeeze
/// slot → ConcatStage joining them level-aligned on the concat observer's
/// scale → integer batch-norm + ReLU. The expand-3x3 convs keep whatever
/// algorithm the model was built with (im2row or Winograd, per-tap included).
Int8Pipeline compile_squeezenet(models::SqueezeNet& model);

/// Compile a trained (or calibrated) ResNeXt-20: the compile_resnet18
/// residual pattern with grouped 3x3 bottleneck convs (cardinality groups
/// dispatch group-wise through both int8 executors).
Int8Pipeline compile_resnext(models::ResNeXt20& model);

}  // namespace wa::deploy
