// Int8 deployment pipeline: run a trained (QAT) network entirely with the
// integer backend kernels.
//
// This is the end of the paper's story: winograd-aware training exists so
// that the *deployed* network can execute Winograd convolutions in int8 on
// integer hardware. The pipeline freezes the scales the training observers
// learned, folds biases, and executes conv / relu / pool / linear stages on
// int8 levels, with int32 accumulators and fixed-point requantization —
// the contract the integration tests check against the QAT forward pass.
//
// The compiler below covers sequential topologies (LeNet-5 here, the
// paper's 5x5-filter model). Residual topologies would additionally need a
// level-aligned skip-add; see DESIGN.md "deployment" notes.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "backend/conv_kernels_s8.hpp"
#include "deploy/int8_ops.hpp"
#include "models/lenet.hpp"

namespace wa::deploy {

/// One convolution stage with frozen quantization parameters.
struct ConvStage {
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t pad = 1;
  float input_scale = 0.F;         // activation scale frozen from the observer
  backend::QTensor weights_q;      // int8 weights (GEMM path)
  Tensor weights_f;                // fp32 weights (Winograd path transforms live)
  wino::Transforms transforms;     // Winograd only (possibly learned/dense)
  backend::WinogradStageScales stage_scales;  // Winograd only
  float output_scale = -1.F;       // frozen Qx(y) scale
  Tensor bias;                     // may be empty
  bool relu_after = false;

  // Weight caches built once at load (Int8Pipeline::push calls prepare()):
  // the Winograd path never recomputes U = G g Gᵀ per forward, the GEMM path
  // never re-transposes its weight matrix per forward.
  backend::WinogradWeightsS8 wino_cache;
  backend::Im2rowWeightsS8 im2row_cache;
  bool prepared() const { return !wino_cache.empty() || !im2row_cache.empty(); }
  void prepare();
};

struct PoolStage {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
};

struct FlattenStage {};

struct LinearStage {
  float input_scale = 0.F;
  backend::QTensor weights_q;
  Tensor bias;
  float output_scale = -1.F;
  bool relu_after = false;
};

using Stage = std::variant<ConvStage, PoolStage, FlattenStage, LinearStage>;

/// A compiled integer-only network: the deployment-side inference engine.
///
/// push() finalises each stage at load time (weight transform + quantize +
/// repack happen exactly once); run() then executes the scatter -> batched
/// GEMM -> gather hot path allocation-free out of per-thread scratch arenas.
class Int8Pipeline {
 public:
  void push(Stage s);
  std::size_t size() const { return stages_.size(); }
  const std::vector<Stage>& stages() const { return stages_; }

  /// Run a float input end-to-end; returns dequantized logits [N, classes].
  /// Activations stay int8 between stages.
  Tensor run(const Tensor& input) const;

  /// run() with the batch split into micro-batches of at most `micro_batch`
  /// inputs. Caps the activation working set so a serving-sized batch stays
  /// inside the cache hierarchy (and inside a bounded arena) instead of
  /// scaling every intermediate with the full batch. micro_batch <= 0 runs
  /// the whole batch at once.
  ///
  /// Bit-identical to run() when every stage scale is frozen (> 0). A stage
  /// left with a dynamic scale (e.g. the final logits stage of
  /// compile_lenet) derives it from each micro-batch's own statistics, so
  /// outputs can differ from run() within quantization rounding.
  Tensor run_batched(const Tensor& input, std::int64_t micro_batch) const;

  /// Argmax class per batch row.
  std::vector<std::int64_t> classify(const Tensor& input) const;

 private:
  std::vector<Stage> stages_;
};

/// Compile a trained LeNet-5 (any conv algorithm, any flex/static
/// transforms) into an integer pipeline. The model must have been trained
/// or calibrated with qspec INT8 so its observers carry ranges; call
/// model.set_training(false) first. Throws std::invalid_argument when a
/// layer type is not supported or observers were never warmed up.
Int8Pipeline compile_lenet(models::LeNet5& model);

}  // namespace wa::deploy
