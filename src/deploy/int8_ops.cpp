#include "deploy/int8_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "backend/conv_kernels_s8.hpp"
#include "backend/perf_counters.hpp"
#include "backend/simd/kernel_table.hpp"
#include "quant/requant.hpp"

namespace wa::deploy {

using backend::QTensor;

QTensor relu_s8(QTensor x) {
  for (auto& v : x.data) v = std::max<std::int8_t>(v, 0);
  return x;
}

QTensor max_pool_s8(const QTensor& x, std::int64_t kernel, std::int64_t stride) {
  if (x.shape.size() != 4) throw std::invalid_argument("max_pool_s8: expects [N,C,H,W]");
  if (kernel < 1 || stride < 1) throw std::invalid_argument("max_pool_s8: bad kernel/stride");
  const std::int64_t n = x.shape[0], c = x.shape[1], h = x.shape[2], w = x.shape[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  if (oh < 1 || ow < 1) throw std::invalid_argument("max_pool_s8: input smaller than kernel");

  QTensor out;
  out.shape = Shape{n, c, oh, ow};
  out.scale = x.scale;
  out.data.resize(static_cast<std::size_t>(n * c * oh * ow));
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const std::int8_t* plane = x.data.data() + (ni * c + ci) * h * w;
      std::int8_t* oplane = out.data.data() + (ni * c + ci) * oh * ow;
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          std::int8_t best = std::numeric_limits<std::int8_t>::min();
          for (std::int64_t a = 0; a < kernel; ++a) {
            for (std::int64_t b = 0; b < kernel; ++b) {
              best = std::max(best, plane[(i * stride + a) * w + (j * stride + b)]);
            }
          }
          oplane[i * ow + j] = best;
        }
      }
    }
  }
  return out;
}

QTensor global_avg_pool_s8(const QTensor& x) {
  if (x.shape.size() != 4) throw std::invalid_argument("global_avg_pool_s8: expects [N,C,H,W]");
  const std::int64_t n = x.shape[0], c = x.shape[1], hw = x.shape[2] * x.shape[3];
  QTensor out;
  out.shape = Shape{n, c};
  out.scale = x.scale;
  out.data.resize(static_cast<std::size_t>(n * c));
  for (std::int64_t i = 0; i < n * c; ++i) {
    std::int32_t acc = 0;
    const std::int8_t* src = x.data.data() + i * hw;
    for (std::int64_t j = 0; j < hw; ++j) acc += src[j];
    out.data[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(std::clamp<std::int32_t>(
        static_cast<std::int32_t>(
            std::nearbyint(static_cast<double>(acc) / static_cast<double>(hw))),
        -127, 127));
  }
  return out;
}

QTensor flatten_s8(QTensor x) {
  if (x.shape.empty()) throw std::invalid_argument("flatten_s8: scalar input");
  std::int64_t features = 1;
  for (std::size_t i = 1; i < x.shape.size(); ++i) features *= x.shape[i];
  x.shape = Shape{x.shape[0], features};
  return x;
}

QTensor linear_s8(const QTensor& x, const QTensor& weights, const Tensor& bias,
                  float out_scale) {
  return linear_s8_prepared(x, prepare_linear_weights_s8(weights), bias, out_scale);
}

LinearWeightsS8 prepare_linear_weights_s8(const QTensor& weights) {
  if (weights.shape.size() != 2) {
    throw std::invalid_argument("prepare_linear_weights_s8: expects 2-d [O, F] weights");
  }
  backend::count_weight_repack();
  LinearWeightsS8 w;
  w.out_features = weights.shape[0];
  w.in_features = weights.shape[1];
  w.scale = weights.scale;
  // Weights arrive [O, F]; transpose to [F, O] for the row-major GEMM.
  w.wt.resize(static_cast<std::size_t>(w.in_features * w.out_features));
  for (std::int64_t oo = 0; oo < w.out_features; ++oo)
    for (std::int64_t ff = 0; ff < w.in_features; ++ff)
      w.wt[static_cast<std::size_t>(ff * w.out_features + oo)] =
          weights.data[static_cast<std::size_t>(oo * w.in_features + ff)];
  return w;
}

QTensor linear_s8_prepared(const QTensor& x, const LinearWeightsS8& weights, const Tensor& bias,
                           float out_scale) {
  if (x.shape.size() != 2) throw std::invalid_argument("linear_s8: expects 2-d input");
  const std::int64_t n = x.shape[0], f = x.shape[1];
  const std::int64_t o = weights.out_features;
  if (weights.in_features != f) throw std::invalid_argument("linear_s8: feature mismatch");

  std::vector<std::int32_t> acc(static_cast<std::size_t>(n * o));
  backend::gemm_s8_s32(n, o, f, x.data.data(), weights.wt.data(), acc.data());

  const float acc_scale = x.scale * weights.scale;
  if (!bias.empty()) {
    if (bias.numel() != o) throw std::invalid_argument("linear_s8: bias/output mismatch");
    for (std::int64_t ni = 0; ni < n; ++ni) {
      std::int32_t* row = acc.data() + ni * o;
      for (std::int64_t oo = 0; oo < o; ++oo) {
        row[oo] += static_cast<std::int32_t>(std::nearbyint(bias.at(oo) / acc_scale));
      }
    }
  }

  float oscale = out_scale;
  if (oscale <= 0.F) {
    std::int32_t amax = 0;
    for (std::int32_t v : acc) amax = std::max(amax, std::abs(v));
    oscale = std::max(acc_scale * static_cast<float>(amax), 1e-12F) / 127.F;
  }
  const auto mult = quant::quantize_multiplier(static_cast<double>(acc_scale) / oscale);

  QTensor out;
  out.shape = Shape{n, o};
  out.scale = oscale;
  out.data.resize(static_cast<std::size_t>(n * o));
  // [N, O] accumulators and [N, O] output agree in layout, so the dispatched
  // fixed-point requantization loop runs over the whole buffer flat.
  backend::simd::kernels().requant_s32_s8(acc.data(), out.data.data(), n * o, mult);
  return out;
}

RequantRatio make_requant_ratio(float from_scale, float to_scale) {
  if (from_scale <= 0.F || to_scale <= 0.F) {
    throw std::invalid_argument("make_requant_ratio: scales must be positive");
  }
  RequantRatio r;
  const double ratio = static_cast<double>(from_scale) / static_cast<double>(to_scale);
  r.identity = std::fabs(ratio - 1.0) < 1e-9;
  if (!r.identity) r.mult = quant::quantize_multiplier(ratio);
  return r;
}

namespace {

/// Shared join kernel: `out` may alias `a` and/or `b` — each element is read
/// before its slot is written, so the aliased and fresh-buffer paths are
/// bit-identical.
void add_rows_s8(const std::int8_t* a, const std::int8_t* b, std::int8_t* out, std::size_t n,
                 const RequantRatio& a_ratio, const RequantRatio& b_ratio, bool relu) {
  for (std::size_t i = 0; i < n; ++i) {
    // 64-bit join: each requantized branch can sit at the int32 saturation
    // rail, and rail + rail overflows int32.
    std::int64_t acc =
        static_cast<std::int64_t>(apply_ratio(a[i], a_ratio)) + apply_ratio(b[i], b_ratio);
    if (relu && acc < 0) acc = 0;
    out[i] = static_cast<std::int8_t>(acc > 127 ? 127 : (acc < -127 ? -127 : acc));
  }
}

}  // namespace

QTensor add_s8(const QTensor& lhs, const QTensor& rhs, const RequantRatio& lhs_ratio,
               const RequantRatio& rhs_ratio, float out_scale, bool relu) {
  if (lhs.shape != rhs.shape) {
    throw std::invalid_argument("add_s8: branch shapes " + to_string(lhs.shape) + " vs " +
                                to_string(rhs.shape) + " do not match");
  }
  QTensor out;
  out.shape = lhs.shape;
  out.scale = out_scale;
  out.data.resize(lhs.data.size());
  add_rows_s8(lhs.data.data(), rhs.data.data(), out.data.data(), lhs.data.size(), lhs_ratio,
              rhs_ratio, relu);
  return out;
}

void add_s8_into(QTensor& dst, const QTensor& other, const RequantRatio& dst_ratio,
                 const RequantRatio& other_ratio, float out_scale, bool relu) {
  if (dst.shape != other.shape) {
    throw std::invalid_argument("add_s8_into: branch shapes " + to_string(dst.shape) + " vs " +
                                to_string(other.shape) + " do not match");
  }
  add_rows_s8(dst.data.data(), other.data.data(), dst.data.data(), dst.data.size(), dst_ratio,
              other_ratio, relu);
  dst.scale = out_scale;
}

QTensor concat_s8(const QTensor& lhs, const QTensor& rhs, const RequantRatio& lhs_ratio,
                  const RequantRatio& rhs_ratio, float out_scale, bool relu) {
  if (lhs.shape.size() != 4 || rhs.shape.size() != 4 || lhs.shape[0] != rhs.shape[0] ||
      lhs.shape[2] != rhs.shape[2] || lhs.shape[3] != rhs.shape[3]) {
    throw std::invalid_argument("concat_s8: branch shapes " + to_string(lhs.shape) + " vs " +
                                to_string(rhs.shape) + " cannot concatenate on channels");
  }
  const std::int64_t n = lhs.shape[0], c1 = lhs.shape[1], c2 = rhs.shape[1];
  const std::int64_t hw = lhs.shape[2] * lhs.shape[3];
  QTensor out;
  out.shape = Shape{n, c1 + c2, lhs.shape[2], lhs.shape[3]};
  out.scale = out_scale;
  out.data.resize(static_cast<std::size_t>(n * (c1 + c2) * hw));
  // Each branch lands level-aligned in its channel range via the shared
  // single-operand remap (a + 0 with the zero ratio identity would change
  // the clamp path — reuse requant semantics directly instead).
  const auto remap_rows = [&](const std::int8_t* src, std::int8_t* dst, std::int64_t count,
                              const RequantRatio& ratio) {
    for (std::int64_t i = 0; i < count; ++i) {
      std::int32_t q = apply_ratio(src[i], ratio);
      if (relu && q < 0) q = 0;
      dst[i] = static_cast<std::int8_t>(q > 127 ? 127 : (q < -127 ? -127 : q));
    }
  };
#pragma omp parallel for schedule(static) if (n > 1)
  for (std::int64_t b = 0; b < n; ++b) {
    remap_rows(lhs.data.data() + b * c1 * hw, out.data.data() + b * (c1 + c2) * hw, c1 * hw,
               lhs_ratio);
    remap_rows(rhs.data.data() + b * c2 * hw, out.data.data() + (b * (c1 + c2) + c1) * hw,
               c2 * hw, rhs_ratio);
  }
  return out;
}

void requant_s8_(QTensor& x, const RequantRatio& ratio, float out_scale) {
  for (auto& v : x.data) {
    const std::int32_t q = apply_ratio(v, ratio);
    v = static_cast<std::int8_t>(q > 127 ? 127 : (q < -127 ? -127 : q));
  }
  x.scale = out_scale;
}

ChannelAffineS8 prepare_channel_affine_s8(const Tensor& scale, const Tensor& bias,
                                          float in_scale, float out_scale) {
  if (scale.numel() != bias.numel()) {
    throw std::invalid_argument("prepare_channel_affine_s8: scale/bias size mismatch");
  }
  if (in_scale <= 0.F || out_scale <= 0.F) {
    throw std::invalid_argument("prepare_channel_affine_s8: scales must be positive");
  }
  ChannelAffineS8 p;
  p.out_scale = out_scale;
  const std::int64_t c = scale.numel();
  p.m0.resize(static_cast<std::size_t>(c));
  p.exp.resize(static_cast<std::size_t>(c));
  p.bias_q.resize(static_cast<std::size_t>(c));
  for (std::int64_t k = 0; k < c; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const double ratio = static_cast<double>(scale.at(k)) * in_scale / out_scale;
    const double mag = std::fabs(ratio);
    std::int64_t m = 0;
    int e = 0;
    if (mag >= 1e-30) {  // below that the channel collapsed — only the bias survives
      const auto fp = quant::quantize_multiplier(mag);
      m = fp.m0;              // mag = m * 2^-(31 + fp.shift)
      e = 31 + fp.shift;
      if (e < 0) {
        // Absurdly hot channel (ratio >= 2^31): any nonzero input saturates
        // the int8 output anyway, so pin the multiplier at the int32 rail.
        m = std::numeric_limits<std::int32_t>::max();
        e = 0;
      } else if (e > 46) {
        // Keep 2^exp (and the pre-scaled bias) comfortably inside int64.
        m = std::llround(std::ldexp(static_cast<double>(m), 46 - e));
        e = 46;
      }
    }
    p.m0[i] = static_cast<std::int32_t>(std::min<std::int64_t>(
        m, std::numeric_limits<std::int32_t>::max()));
    if (ratio < 0) p.m0[i] = -p.m0[i];
    p.exp[i] = static_cast<std::int8_t>(e);
    const double b = static_cast<double>(bias.at(k)) / out_scale * std::ldexp(1.0, e);
    p.bias_q[i] = std::llround(std::min(1e17, std::max(-1e17, b)));
  }
  return p;
}

namespace {

/// Shared affine kernel; `dst` may alias `src` (pure per-element map).
void channel_affine_rows_s8(const std::int8_t* src, std::int8_t* dst, std::int64_t n,
                            std::int64_t c, std::int64_t hw, const ChannelAffineS8& p,
                            bool relu) {
#pragma omp parallel for collapse(2) schedule(static) if (n * c >= 16)
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const auto k = static_cast<std::size_t>(ci);
      const std::int64_t m = p.m0[k];
      const int e = p.exp[k];
      const std::int64_t bq = p.bias_q[k];
      const std::int64_t half = e == 0 ? 0 : std::int64_t{1} << (e - 1);
      const std::int8_t* s = src + (ni * c + ci) * hw;
      std::int8_t* d = dst + (ni * c + ci) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const std::int64_t v = m * s[i] + bq;
        // Round half away from zero, one single rounding for the whole affine.
        std::int64_t q = e == 0 ? v : (v >= 0 ? v + half : v - half) / (std::int64_t{1} << e);
        if (relu && q < 0) q = 0;
        d[i] = static_cast<std::int8_t>(q > 127 ? 127 : (q < -127 ? -127 : q));
      }
    }
  }
}

void check_affine_shapes(const QTensor& x, const ChannelAffineS8& p) {
  if (x.shape.size() != 4 && x.shape.size() != 2) {
    throw std::invalid_argument("channel_affine_s8: expects [N,C,H,W] or [N,C]");
  }
  if (x.shape[1] != static_cast<std::int64_t>(p.m0.size())) {
    throw std::invalid_argument("channel_affine_s8: input has " + std::to_string(x.shape[1]) +
                                " channels, affine has " + std::to_string(p.m0.size()));
  }
}

}  // namespace

QTensor channel_affine_s8(const QTensor& x, const ChannelAffineS8& p, bool relu) {
  check_affine_shapes(x, p);
  const std::int64_t hw = x.shape.size() == 4 ? x.shape[2] * x.shape[3] : 1;
  QTensor out;
  out.shape = x.shape;
  out.scale = p.out_scale;
  out.data.resize(x.data.size());
  channel_affine_rows_s8(x.data.data(), out.data.data(), x.shape[0], x.shape[1], hw, p, relu);
  return out;
}

void channel_affine_s8_(QTensor& x, const ChannelAffineS8& p, bool relu) {
  check_affine_shapes(x, p);
  const std::int64_t hw = x.shape.size() == 4 ? x.shape[2] * x.shape[3] : 1;
  channel_affine_rows_s8(x.data.data(), x.data.data(), x.shape[0], x.shape[1], hw, p, relu);
  x.scale = p.out_scale;
}

}  // namespace wa::deploy
