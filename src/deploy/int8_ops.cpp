#include "deploy/int8_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "backend/conv_kernels_s8.hpp"
#include "quant/requant.hpp"

namespace wa::deploy {

using backend::QTensor;

QTensor relu_s8(QTensor x) {
  for (auto& v : x.data) v = std::max<std::int8_t>(v, 0);
  return x;
}

QTensor max_pool_s8(const QTensor& x, std::int64_t kernel, std::int64_t stride) {
  if (x.shape.size() != 4) throw std::invalid_argument("max_pool_s8: expects [N,C,H,W]");
  if (kernel < 1 || stride < 1) throw std::invalid_argument("max_pool_s8: bad kernel/stride");
  const std::int64_t n = x.shape[0], c = x.shape[1], h = x.shape[2], w = x.shape[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  if (oh < 1 || ow < 1) throw std::invalid_argument("max_pool_s8: input smaller than kernel");

  QTensor out;
  out.shape = Shape{n, c, oh, ow};
  out.scale = x.scale;
  out.data.resize(static_cast<std::size_t>(n * c * oh * ow));
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const std::int8_t* plane = x.data.data() + (ni * c + ci) * h * w;
      std::int8_t* oplane = out.data.data() + (ni * c + ci) * oh * ow;
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          std::int8_t best = std::numeric_limits<std::int8_t>::min();
          for (std::int64_t a = 0; a < kernel; ++a) {
            for (std::int64_t b = 0; b < kernel; ++b) {
              best = std::max(best, plane[(i * stride + a) * w + (j * stride + b)]);
            }
          }
          oplane[i * ow + j] = best;
        }
      }
    }
  }
  return out;
}

QTensor global_avg_pool_s8(const QTensor& x) {
  if (x.shape.size() != 4) throw std::invalid_argument("global_avg_pool_s8: expects [N,C,H,W]");
  const std::int64_t n = x.shape[0], c = x.shape[1], hw = x.shape[2] * x.shape[3];
  QTensor out;
  out.shape = Shape{n, c};
  out.scale = x.scale;
  out.data.resize(static_cast<std::size_t>(n * c));
  for (std::int64_t i = 0; i < n * c; ++i) {
    std::int32_t acc = 0;
    const std::int8_t* src = x.data.data() + i * hw;
    for (std::int64_t j = 0; j < hw; ++j) acc += src[j];
    out.data[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(std::clamp<std::int32_t>(
        static_cast<std::int32_t>(
            std::nearbyint(static_cast<double>(acc) / static_cast<double>(hw))),
        -127, 127));
  }
  return out;
}

QTensor flatten_s8(QTensor x) {
  if (x.shape.empty()) throw std::invalid_argument("flatten_s8: scalar input");
  std::int64_t features = 1;
  for (std::size_t i = 1; i < x.shape.size(); ++i) features *= x.shape[i];
  x.shape = Shape{x.shape[0], features};
  return x;
}

QTensor linear_s8(const QTensor& x, const QTensor& weights, const Tensor& bias,
                  float out_scale) {
  if (x.shape.size() != 2 || weights.shape.size() != 2) {
    throw std::invalid_argument("linear_s8: expects 2-d input and weights");
  }
  const std::int64_t n = x.shape[0], f = x.shape[1];
  const std::int64_t o = weights.shape[0];
  if (weights.shape[1] != f) throw std::invalid_argument("linear_s8: feature mismatch");

  // Weights arrive [O, F]; transpose to [F, O] for the row-major GEMM.
  std::vector<std::int8_t> wt(static_cast<std::size_t>(f * o));
  for (std::int64_t oo = 0; oo < o; ++oo)
    for (std::int64_t ff = 0; ff < f; ++ff)
      wt[static_cast<std::size_t>(ff * o + oo)] =
          weights.data[static_cast<std::size_t>(oo * f + ff)];

  std::vector<std::int32_t> acc(static_cast<std::size_t>(n * o));
  backend::gemm_s8_s32(n, o, f, x.data.data(), wt.data(), acc.data());

  const float acc_scale = x.scale * weights.scale;
  if (!bias.empty()) {
    if (bias.numel() != o) throw std::invalid_argument("linear_s8: bias/output mismatch");
    for (std::int64_t ni = 0; ni < n; ++ni) {
      std::int32_t* row = acc.data() + ni * o;
      for (std::int64_t oo = 0; oo < o; ++oo) {
        row[oo] += static_cast<std::int32_t>(std::nearbyint(bias.at(oo) / acc_scale));
      }
    }
  }

  float oscale = out_scale;
  if (oscale <= 0.F) {
    std::int32_t amax = 0;
    for (std::int32_t v : acc) amax = std::max(amax, std::abs(v));
    oscale = std::max(acc_scale * static_cast<float>(amax), 1e-12F) / 127.F;
  }
  const auto mult = quant::quantize_multiplier(static_cast<double>(acc_scale) / oscale);

  QTensor out;
  out.shape = Shape{n, o};
  out.scale = oscale;
  out.data.resize(static_cast<std::size_t>(n * o));
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    out.data[i] = static_cast<std::int8_t>(
        quant::saturate(quant::apply_multiplier(acc[i], mult), 8));
  }
  return out;
}

}  // namespace wa::deploy
