// Integer-domain tensor ops for the int8 deployment pipeline.
//
// Everything between convolutions runs directly on int8 levels: with
// symmetric per-layer quantization real 0.0 is exactly level 0, so ReLU and
// max-pool are order-preserving level operations and never need the scale.
// Ops that cross scale domains (skip-add, deployed batch-norm) rescale with
// fixed-point multipliers, never float math on the activations.
#pragma once

#include <vector>

#include "backend/qtensor.hpp"
#include "quant/requant.hpp"

namespace wa::deploy {

/// max(0, x) on levels (exact: symmetric scale maps level 0 to real 0).
backend::QTensor relu_s8(backend::QTensor x);

/// 2-D max pooling on levels (exact: max commutes with a positive scale).
backend::QTensor max_pool_s8(const backend::QTensor& x, std::int64_t kernel, std::int64_t stride);

/// Global average pool [N,C,H,W] -> [N,C]: int32 sum, rounded level mean.
backend::QTensor global_avg_pool_s8(const backend::QTensor& x);

/// Collapse [N, ...] to [N, features]; levels and scale unchanged.
backend::QTensor flatten_s8(backend::QTensor x);

/// Fully connected: y = x [N,F] * Wᵀ [O,F] + b, int8 x int8 -> int32 with
/// fixed-point requantization to int8 at `out_scale` (derived from the
/// accumulator abs-max when non-positive). `bias` may be empty. Repacks the
/// weight matrix on every call — load-time code should prepare once and use
/// linear_s8_prepared instead.
backend::QTensor linear_s8(const backend::QTensor& x, const backend::QTensor& weights,
                           const Tensor& bias, float out_scale = -1.F);

/// Linear weights repacked once at load: [O, F] -> [F, O] so the per-forward
/// GEMM consumes them directly (the conv layers got the same treatment in
/// prepare_im2row_weights_s8).
struct LinearWeightsS8 {
  std::vector<std::int8_t> wt;  // [F, O]
  float scale = 1.F;
  std::int64_t out_features = 0;
  std::int64_t in_features = 0;
  bool empty() const { return wt.empty(); }
};

LinearWeightsS8 prepare_linear_weights_s8(const backend::QTensor& weights);

/// linear_s8 from prepared weights: no repack at run time.
backend::QTensor linear_s8_prepared(const backend::QTensor& x, const LinearWeightsS8& weights,
                                    const Tensor& bias, float out_scale = -1.F);

/// Level remap from one scale domain to another, frozen as a fixed-point
/// multiplier at load time. `identity` short-circuits the exact ratio-1 case
/// (the Q31 round trip is not bit-exact for a multiplier of exactly 1.0).
struct RequantRatio {
  quant::FixedPointMultiplier mult;
  bool identity = true;
};

RequantRatio make_requant_ratio(float from_scale, float to_scale);

inline std::int32_t apply_ratio(std::int32_t v, const RequantRatio& r) {
  return r.identity ? v : quant::apply_multiplier(v, r.mult);
}

/// Level-aligned residual add: both operands are requantized onto
/// `out_scale` via their prepared ratios, summed in int64 (each requantized
/// branch can sit at the int32 saturation rail, so an int32 join could
/// wrap), optionally ReLU-ed, and saturated to int8. Shapes must match
/// exactly.
backend::QTensor add_s8(const backend::QTensor& lhs, const backend::QTensor& rhs,
                        const RequantRatio& lhs_ratio, const RequantRatio& rhs_ratio,
                        float out_scale, bool relu);

/// add_s8 writing the join INTO `dst` (the memory plan's in-place residual
/// add — used when one branch dies at the join, so its buffer can carry the
/// result). `dst_ratio` belongs to dst, `other_ratio` to other; the
/// element arithmetic is identical to add_s8, so the result is bit-identical
/// regardless of which operand hosts it. `other` may alias `dst`.
void add_s8_into(backend::QTensor& dst, const backend::QTensor& rhs,
                 const RequantRatio& dst_ratio, const RequantRatio& other_ratio,
                 float out_scale, bool relu);

/// Level-aligned channel concatenation (the fire-module join): both operands
/// are requantized onto `out_scale` via their prepared ratios and written
/// into adjacent channel ranges of a fresh [N, C1+C2, H, W] tensor,
/// optionally ReLU-ed. Operands must be 4-d with equal N/H/W. Never in
/// place — the output is strictly larger than either operand.
backend::QTensor concat_s8(const backend::QTensor& lhs, const backend::QTensor& rhs,
                           const RequantRatio& lhs_ratio, const RequantRatio& rhs_ratio,
                           float out_scale, bool relu);

/// Fixed-point level remap applied in place: x[i] = sat8(apply_ratio(x[i])),
/// x.scale = out_scale. This is the standalone RequantStage body and the
/// fused requant epilogue — one code path, so fusing cannot change a bit.
void requant_s8_(backend::QTensor& x, const RequantRatio& ratio, float out_scale);

/// Per-channel integer affine y_c = A_c * x_c + B_c — deployed batch-norm.
/// Prepared once at load as a fused Q-format multiply-add: per channel a
/// signed multiplier m0 (gamma can go negative during training) and a bias
/// pre-scaled into the same 2^exp domain, so the whole affine pays exactly
/// one rounding — round((m0 * x + bias_q) * 2^-exp) — instead of rounding
/// the multiply and the bias separately (which can drift past one output
/// level when |A_c| * s_in / s_out > 1).
struct ChannelAffineS8 {
  std::vector<std::int32_t> m0;      // signed multiplier, magnitude in Q(exp)
  std::vector<std::int8_t> exp;      // per-channel right shift, 0..46
  std::vector<std::int64_t> bias_q;  // round(B_c / out_scale * 2^exp)
  float out_scale = 1.F;
  bool empty() const { return m0.empty(); }
};

/// `scale`/`bias` are the per-channel A/B in real units (e.g. from
/// batch-norm: A = gamma / sqrt(var + eps), B = beta - A * mean).
ChannelAffineS8 prepare_channel_affine_s8(const Tensor& scale, const Tensor& bias,
                                          float in_scale, float out_scale);

/// Apply a prepared per-channel affine to [N,C,H,W] or [N,C] levels,
/// optionally fusing ReLU, saturating to int8 at p.out_scale.
backend::QTensor channel_affine_s8(const backend::QTensor& x, const ChannelAffineS8& p,
                                   bool relu);

/// channel_affine_s8 applied in place (the fused batch-norm epilogue): same
/// per-element kernel with src == dst, so the result is bit-identical to
/// the out-of-place stage.
void channel_affine_s8_(backend::QTensor& x, const ChannelAffineS8& p, bool relu);

}  // namespace wa::deploy
