// Integer-domain tensor ops for the int8 deployment pipeline.
//
// Everything between convolutions runs directly on int8 levels: with
// symmetric per-layer quantization real 0.0 is exactly level 0, so ReLU and
// max-pool are order-preserving level operations and never need the scale.
#pragma once

#include "backend/qtensor.hpp"

namespace wa::deploy {

/// max(0, x) on levels (exact: symmetric scale maps level 0 to real 0).
backend::QTensor relu_s8(backend::QTensor x);

/// 2-D max pooling on levels (exact: max commutes with a positive scale).
backend::QTensor max_pool_s8(const backend::QTensor& x, std::int64_t kernel, std::int64_t stride);

/// Global average pool [N,C,H,W] -> [N,C]: int32 sum, rounded level mean.
backend::QTensor global_avg_pool_s8(const backend::QTensor& x);

/// Collapse [N, ...] to [N, features]; levels and scale unchanged.
backend::QTensor flatten_s8(backend::QTensor x);

/// Fully connected: y = x [N,F] * Wᵀ [O,F] + b, int8 x int8 -> int32 with
/// fixed-point requantization to int8 at `out_scale` (derived from the
/// accumulator abs-max when non-positive). `bias` may be empty.
backend::QTensor linear_s8(const backend::QTensor& x, const backend::QTensor& weights,
                           const Tensor& bias, float out_scale = -1.F);

}  // namespace wa::deploy
