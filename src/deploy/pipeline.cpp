#include "deploy/pipeline.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "backend/bn_fold.hpp"
#include "core/wa_conv2d.hpp"

namespace wa::deploy {

using backend::QTensor;

namespace {

/// Remap int8 levels from one scale to another (identity when they match).
QTensor rescale_s8(QTensor x, float target_scale) {
  if (target_scale <= 0.F || std::fabs(x.scale - target_scale) < 1e-12F) return x;
  const float ratio = x.scale / target_scale;
  for (auto& v : x.data) {
    const float q = std::nearbyint(static_cast<float>(v) * ratio);
    v = static_cast<std::int8_t>(std::min(127.F, std::max(-127.F, q)));
  }
  x.scale = target_scale;
  return x;
}

std::string stage_type_name(const Stage& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage>) return "conv";
        else if constexpr (std::is_same_v<T, PoolStage>) return "max-pool";
        else if constexpr (std::is_same_v<T, FlattenStage>) return "flatten";
        else if constexpr (std::is_same_v<T, AvgPoolStage>) return "avg-pool";
        else if constexpr (std::is_same_v<T, LinearStage>) return "linear";
        else if constexpr (std::is_same_v<T, BnStage>) return "batch-norm";
        else return "add";
      },
      s);
}

void expect(bool cond, const std::string& where, const std::string& msg) {
  if (!cond) throw std::invalid_argument(where + ": " + msg);
}

backend::ConvGeometry conv_geometry(const ConvStage& st, const Shape& in_shape) {
  backend::ConvGeometry g;
  g.batch = in_shape[0];
  g.in_channels = st.in_channels;
  g.height = in_shape[2];
  g.width = in_shape[3];
  g.out_channels = st.out_channels;
  g.kernel = st.kernel;
  g.pad = st.pad;
  return g;
}

QTensor run_conv(const ConvStage& st, QTensor x, const std::string& where) {
  // Validate the activation against the stage BEFORE building the geometry:
  // a mis-assembled pipeline (e.g. a conv fed a flattened [N, F] tensor)
  // must fail loudly here, not read past the end of the shape array.
  expect(x.shape.size() == 4, where,
         "convolution expects a 4-d [N,C,H,W] activation, got " + to_string(x.shape));
  expect(x.shape[1] == st.in_channels, where,
         "activation has " + std::to_string(x.shape[1]) + " channels, stage expects " +
             std::to_string(st.in_channels));
  const std::int64_t oh = x.shape[2] + 2 * st.pad - st.kernel + 1;
  const std::int64_t ow = x.shape[3] + 2 * st.pad - st.kernel + 1;
  expect(oh >= 1 && ow >= 1, where,
         "activation " + to_string(x.shape) + " is smaller than the " +
             std::to_string(st.kernel) + "x" + std::to_string(st.kernel) + " kernel");
  x = rescale_s8(std::move(x), st.input_scale);
  const backend::ConvGeometry g = conv_geometry(st, x.shape);
  QTensor y;
  if (nn::is_winograd(st.algo)) {
    y = backend::winograd_conv_s8_prepared(x, st.wino_cache, g, st.transforms, st.stage_scales,
                                           st.bias.empty() ? nullptr : &st.bias);
  } else {
    y = backend::im2row_conv_s8_prepared(x, st.im2row_cache, g, st.output_scale,
                                         st.bias.empty() ? nullptr : &st.bias);
  }
  return st.relu_after ? relu_s8(std::move(y)) : y;
}

QTensor run_linear(const LinearStage& st, QTensor x, const std::string& where) {
  expect(x.shape.size() == 2, where,
         "linear expects a 2-d [N, F] activation, got " + to_string(x.shape) +
             " (flatten or avg-pool first)");
  expect(x.shape[1] == st.packed.in_features, where,
         "activation has " + std::to_string(x.shape[1]) + " features, stage expects " +
             std::to_string(st.packed.in_features));
  x = rescale_s8(std::move(x), st.input_scale);
  QTensor y = linear_s8_prepared(x, st.packed, st.bias, st.output_scale);
  return st.relu_after ? relu_s8(std::move(y)) : y;
}

QTensor run_bn(const BnStage& st, QTensor x, const std::string& where) {
  expect(x.shape.size() == 4 || x.shape.size() == 2, where,
         "batch-norm expects [N,C,H,W] or [N,C], got " + to_string(x.shape));
  expect(x.shape[1] == st.scale.numel(), where,
         "activation has " + std::to_string(x.shape[1]) + " channels, batch-norm has " +
             std::to_string(st.scale.numel()));
  x = rescale_s8(std::move(x), st.input_scale);
  return channel_affine_s8(x, st.affine, st.relu_after);
}

QTensor run_add(const AddStage& st, QTensor lhs, QTensor rhs, const std::string& where) {
  expect(lhs.shape == rhs.shape, where,
         "skip-add branch shapes " + to_string(lhs.shape) + " vs " + to_string(rhs.shape) +
             " do not match");
  lhs = rescale_s8(std::move(lhs), st.lhs_scale);
  rhs = rescale_s8(std::move(rhs), st.rhs_scale);
  return add_s8(lhs, rhs, st.lhs_ratio, st.rhs_ratio, st.output_scale, st.relu_after);
}

}  // namespace

void ConvStage::prepare() {
  if (nn::is_winograd(algo)) {
    wino_cache =
        backend::prepare_winograd_weights_s8(weights_f, transforms, stage_scales.weights_transformed);
    // The derived scale is now frozen: per-forward scale rediscovery would
    // otherwise disagree with the cached levels.
    stage_scales.weights_transformed = wino_cache.scale;
    weights_f = Tensor();  // only the cached U is consulted from here on
  } else {
    im2row_cache = backend::prepare_im2row_weights_s8(weights_q);
    weights_q = backend::QTensor{};  // only the packed copy is consulted
  }
}

void LinearStage::prepare() {
  packed = prepare_linear_weights_s8(weights_q);
  weights_q = backend::QTensor{};  // only the packed copy is consulted
}

void BnStage::prepare() {
  if (input_scale <= 0.F || output_scale <= 0.F) {
    throw std::invalid_argument("BnStage: input and output scales must be frozen (> 0)");
  }
  affine = prepare_channel_affine_s8(scale, bias, input_scale, output_scale);
}

void AddStage::prepare() {
  if (output_scale <= 0.F) {
    throw std::invalid_argument("AddStage: output scale must be frozen (> 0)");
  }
  lhs_ratio = make_requant_ratio(lhs_scale, output_scale);
  rhs_ratio = make_requant_ratio(rhs_scale, output_scale);
  prepared_ = true;
}

void Int8Pipeline::push(Stage s, StageIO io) {
  const std::string where =
      "Int8Pipeline::push(" +
      (io.label.empty() ? "stage " + std::to_string(nodes_.size()) : io.label) + ")";
  const bool is_add = std::holds_alternative<AddStage>(s);
  expect(!is_add || !io.input2.empty(), where,
         "an AddStage needs a second operand — set io.input2 to a published slot");
  expect(is_add || io.input2.empty(), where,
         "io.input2 is only meaningful for an AddStage");

  // Graph sanity at load time: named inputs must be published by an earlier
  // stage, outputs must be fresh, and an implicit input needs the previous
  // stage to actually chain (not publish to a slot).
  std::set<std::string> published;
  for (const Node& n : nodes_) {
    if (!n.io.output.empty()) published.insert(n.io.output);
  }
  for (const std::string* in : {&io.input, &io.input2}) {
    expect(in->empty() || published.count(*in) > 0, where,
           "input slot '" + *in + "' is not produced by any earlier stage");
  }
  expect(io.output.empty() || published.count(io.output) == 0, where,
         "output slot '" + io.output + "' is already taken");
  if (io.input.empty() && !nodes_.empty() && !nodes_.back().io.output.empty()) {
    throw std::invalid_argument(where +
                                ": no implicit input — the previous stage publishes to slot '" +
                                nodes_.back().io.output + "'; name it as io.input");
  }
  if (!io.input.empty() && !nodes_.empty() && nodes_.back().io.output.empty()) {
    // The mirror case: reading a named slot here would silently discard the
    // previous stage's chained output (its work would run and be dropped).
    throw std::invalid_argument(where + ": reading slot '" + io.input +
                                "' would drop the previous stage's chained output — publish "
                                "that output to a slot (io.output) or consume it implicitly");
  }

  // Finalise weight caches / fixed-point multipliers at load so no forward
  // ever pays for them.
  std::visit(
      [](auto& st) {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage> || std::is_same_v<T, LinearStage> ||
                      std::is_same_v<T, BnStage> || std::is_same_v<T, AddStage>) {
          if (!st.prepared()) st.prepare();
        }
      },
      s);
  nodes_.push_back({std::move(s), std::move(io)});
}

Tensor Int8Pipeline::run(const Tensor& input, std::vector<StageTiming>* timings) const {
  return run_impl(input, timings, nullptr);
}

Tensor Int8Pipeline::run_impl(const Tensor& input, std::vector<StageTiming>* timings,
                              std::vector<float>* out_scales) const {
  if (nodes_.empty()) throw std::invalid_argument("Int8Pipeline::run: empty pipeline");
  const auto* first = std::get_if<ConvStage>(&nodes_.front().op);
  if (first == nullptr) {
    throw std::invalid_argument("Int8Pipeline::run: pipeline must start with a convolution");
  }
  if (timings != nullptr) {
    timings->clear();
    timings->reserve(nodes_.size());
  }

  // Reference-count the named slots so each is released at its last read.
  std::map<std::string, int> refs;
  for (const Node& n : nodes_) {
    if (!n.io.input.empty()) ++refs[n.io.input];
    if (!n.io.input2.empty()) ++refs[n.io.input2];
  }
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    // Only the final stage may publish without a reader (it is the result).
    const std::string& out = nodes_[i].io.output;
    expect(out.empty() || refs.count(out) > 0,
           nodes_[i].io.label.empty() ? "stage " + std::to_string(i) : nodes_[i].io.label,
           "published slot '" + out + "' is never consumed — dead dataflow");
  }
  std::map<std::string, QTensor> slots;
  auto fetch = [&](const std::string& name, const std::string& where) -> QTensor {
    auto it = slots.find(name);
    expect(it != slots.end(), where, "activation slot '" + name + "' is not live");
    if (--refs[name] <= 0) {
      QTensor t = std::move(it->second);
      slots.erase(it);
      return t;
    }
    return it->second;  // later consumers still need it
  };

  QTensor cur = backend::quantize_s8(input, first->input_scale);
  if (out_scales != nullptr) {
    out_scales->assign(nodes_.size() + 1, -1.F);
    (*out_scales)[0] = cur.scale;  // the input quantizer's (possibly derived) scale
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    const std::string where = node.io.label.empty()
                                  ? "stage " + std::to_string(i) + " (" + stage_type_name(node.op) + ")"
                                  : node.io.label;
    const auto t0 = std::chrono::steady_clock::now();
    QTensor in = node.io.input.empty() ? std::move(cur) : fetch(node.io.input, where);
    QTensor out = std::visit(
        [&](const auto& st) -> QTensor {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            return run_conv(st, std::move(in), where);
          } else if constexpr (std::is_same_v<T, PoolStage>) {
            expect(in.shape.size() == 4, where,
                   "max-pool expects [N,C,H,W], got " + to_string(in.shape));
            return max_pool_s8(in, st.kernel, st.stride);
          } else if constexpr (std::is_same_v<T, FlattenStage>) {
            return flatten_s8(std::move(in));
          } else if constexpr (std::is_same_v<T, AvgPoolStage>) {
            expect(in.shape.size() == 4, where,
                   "avg-pool expects [N,C,H,W], got " + to_string(in.shape));
            return global_avg_pool_s8(in);
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            return run_linear(st, std::move(in), where);
          } else if constexpr (std::is_same_v<T, BnStage>) {
            return run_bn(st, std::move(in), where);
          } else {
            QTensor rhs = fetch(node.io.input2, where);
            return run_add(st, std::move(in), std::move(rhs), where);
          }
        },
        node.op);
    if (timings != nullptr) {
      const auto t1 = std::chrono::steady_clock::now();
      timings->push_back({where, std::chrono::duration<double, std::milli>(t1 - t0).count()});
    }
    if (out_scales != nullptr) (*out_scales)[i + 1] = out.scale;
    if (node.io.output.empty()) {
      cur = std::move(out);
    } else {
      slots[node.io.output] = std::move(out);
      cur = QTensor{};
    }
  }
  const Node& last = nodes_.back();
  return backend::dequantize(last.io.output.empty() ? cur : slots[last.io.output]);
}

Tensor Int8Pipeline::run_batched(const Tensor& input, std::int64_t micro_batch) const {
  if (input.dim() < 1) throw std::invalid_argument("Int8Pipeline::run_batched: scalar input");
  const std::int64_t n = input.size(0);
  if (micro_batch <= 0 || micro_batch >= n) return run(input);
  // Splitting re-derives every dynamic scale from each chunk's own
  // statistics, so two identical samples could quantize differently based on
  // which neighbours they were coalesced with. Serving cannot tolerate that;
  // reject deterministically instead of silently perturbing logits.
  if (const auto dynamic = dynamic_scale_labels(); !dynamic.empty()) {
    throw std::invalid_argument(
        "Int8Pipeline::run_batched: splitting a batch across stages with dynamic scales would "
        "make results depend on batch composition — freeze_scales() first (dynamic: " +
        join_labels(dynamic) + ")");
  }
  std::vector<Tensor> chunks;
  chunks.reserve(static_cast<std::size_t>((n + micro_batch - 1) / micro_batch));
  for (std::int64_t b0 = 0; b0 < n; b0 += micro_batch) {
    chunks.push_back(run(input.slice0(b0, std::min(n, b0 + micro_batch))));
  }
  return Tensor::concat(chunks, 0);
}

std::string Int8Pipeline::join_labels(const std::vector<std::string>& labels) {
  std::string out;
  for (const std::string& l : labels) out += (out.empty() ? "" : ", ") + l;
  return out;
}

std::vector<std::string> Int8Pipeline::dynamic_scale_labels() const {
  std::vector<std::string> out;
  const auto where = [this](std::size_t i) {
    const Node& n = nodes_[i];
    return n.io.label.empty() ? "stage " + std::to_string(i) + " (" + stage_type_name(n.op) + ")"
                              : n.io.label;
  };
  if (!nodes_.empty()) {
    if (const auto* first = std::get_if<ConvStage>(&nodes_.front().op);
        first != nullptr && first->input_scale <= 0.F) {
      out.push_back(where(0) + ".input-quantizer");
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::visit(
        [&](const auto& st) {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            if (nn::is_winograd(st.algo)) {
              // The Winograd kernel reads its scales from stage_scales, not
              // output_scale; V/M are internal stages, Y is the output.
              if (st.stage_scales.input_transformed <= 0.F) out.push_back(where(i) + ".v");
              if (st.stage_scales.hadamard <= 0.F) out.push_back(where(i) + ".m");
              if (st.stage_scales.output <= 0.F) out.push_back(where(i) + ".y");
            } else if (st.output_scale <= 0.F) {
              out.push_back(where(i));
            }
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            if (st.output_scale <= 0.F) out.push_back(where(i));
          }
          // Pool/flatten/avg-pool pass levels through unchanged; BnStage and
          // AddStage refuse to prepare() without frozen scales.
        },
        nodes_[i].op);
  }
  return out;
}

void Int8Pipeline::freeze_scales(const Tensor& calibration) {
  if (all_scales_frozen()) return;
  // Internal Winograd scales (V, M) are derived inside the kernel and never
  // surfaced, so a calibration forward cannot capture them.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (const auto* st = std::get_if<ConvStage>(&nodes_[i].op);
        st != nullptr && nn::is_winograd(st->algo) &&
        (st->stage_scales.input_transformed <= 0.F || st->stage_scales.hadamard <= 0.F)) {
      throw std::invalid_argument(
          "Int8Pipeline::freeze_scales: " +
          (nodes_[i].io.label.empty() ? "stage " + std::to_string(i) : nodes_[i].io.label) +
          " has dynamic internal Winograd scales (V/M) that only the kernel sees — deploy it "
          "with observer-frozen stage scales (compile_lenet/compile_resnet18 do)");
    }
  }
  std::vector<float> scales;
  run_impl(calibration, nullptr, &scales);
  if (auto* first = std::get_if<ConvStage>(&nodes_.front().op); first->input_scale <= 0.F) {
    first->input_scale = scales[0];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::visit(
        [&](auto& st) {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            if (st.output_scale <= 0.F) st.output_scale = scales[i + 1];
            if (nn::is_winograd(st.algo) && st.stage_scales.output <= 0.F) {
              st.stage_scales.output = scales[i + 1];
            }
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            if (st.output_scale <= 0.F) st.output_scale = scales[i + 1];
          }
        },
        nodes_[i].op);
  }
}

std::vector<std::int64_t> Int8Pipeline::classify(const Tensor& input) const {
  const Tensor logits = run(input);
  const std::int64_t n = logits.size(0), classes = logits.numel() / n;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (logits.at(i * classes + c) > logits.at(i * classes + best)) best = c;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

// ---- compilers --------------------------------------------------------------

namespace {

const quant::QuantSpec kInt8{8};

float observer_scale_checked(const quant::RangeObserver& obs, const std::string& where) {
  if (!obs.initialized()) {
    throw std::invalid_argument("compile: observer never calibrated at " + where +
                                " — train or run a calibration pass first");
  }
  return obs.scale(kInt8);
}

ConvStage compile_conv(nn::Module& layer, const std::string& name, bool relu_after) {
  ConvStage st;
  st.relu_after = relu_after;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const auto& o = conv->options();
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.input_scale = observer_scale_checked(conv->input_observer(), name);
    st.weights_q = backend::quantize_s8(conv->weight().value());
    if (conv->bias().defined()) st.bias = conv->bias().value();
    return st;
  }
  if (auto* wa = dynamic_cast<core::WinogradAwareConv2d*>(&layer)) {
    const auto& o = wa->options();
    st.algo = o.algo;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.input_scale = observer_scale_checked(wa->input_observer(), name);
    // Training transforms the fake-quantized weights (U = Q(G ŵ Gᵀ));
    // replicate that here or the deployed U drifts from the trained one.
    Tensor w = wa->weight().value();
    quant::fake_quant_(w, quant::scale_for(w.abs_max(), kInt8), kInt8);
    st.weights_f = std::move(w);
    // The layer's live transforms — learned ("flex") ones carry over as-is,
    // which is exactly how a dense learned transform reaches deployment.
    st.transforms.m = wa->output_tile();
    st.transforms.r = static_cast<int>(o.kernel);
    st.transforms.tile = wa->input_tile();
    st.transforms.g_mat = wa->g_mat().value();
    st.transforms.bt_mat = wa->bt_mat().value();
    st.transforms.at_mat = wa->at_mat().value();
    auto& stg = wa->stages();
    st.stage_scales.weights_transformed = stg.u.scale(kInt8);
    st.stage_scales.input_transformed = observer_scale_checked(stg.v, name + ".v");
    st.stage_scales.hadamard = observer_scale_checked(stg.m, name + ".m");
    st.stage_scales.output = observer_scale_checked(stg.y, name + ".y");
    st.output_scale = st.stage_scales.output;
    if (wa->options().bias) st.bias = wa->bias().value();
    return st;
  }
  throw std::invalid_argument("compile: unsupported conv layer type at " + name);
}

}  // namespace

Int8Pipeline compile_lenet(models::LeNet5& model) {
  model.set_training(false);
  Int8Pipeline pipe;

  // LeNet's forward order: conv1-relu-pool1, conv2-relu-pool2, flatten,
  // fc1-relu, fc2-relu, fc3. Children are registered in that order; pull
  // them out by name so a registration reshuffle fails loudly here.
  nn::Module* conv1 = nullptr;
  nn::Module* conv2 = nullptr;
  nn::MaxPool2d* pool1 = nullptr;
  nn::MaxPool2d* pool2 = nullptr;
  nn::Linear* fc1 = nullptr;
  nn::Linear* fc2 = nullptr;
  nn::Linear* fc3 = nullptr;
  for (const auto& [name, child] : model.named_children()) {
    if (name == "conv1") conv1 = child.get();
    if (name == "conv2") conv2 = child.get();
    if (name == "pool1") pool1 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "pool2") pool2 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "fc1") fc1 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc2") fc2 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc3") fc3 = dynamic_cast<nn::Linear*>(child.get());
  }
  if (!conv1 || !conv2 || !pool1 || !pool2 || !fc1 || !fc2 || !fc3) {
    throw std::invalid_argument("compile_lenet: model does not look like LeNet-5");
  }

  auto linear_stage = [](nn::Linear& fc, const std::string& name, bool relu) {
    LinearStage st;
    st.relu_after = relu;
    st.input_scale = observer_scale_checked(fc.input_observer(), name);
    st.weights_q = backend::quantize_s8(fc.weight().value());
    if (fc.bias().defined()) st.bias = fc.bias().value();
    return st;
  };

  ConvStage c1 = compile_conv(*conv1, "conv1", /*relu_after=*/true);
  ConvStage c2 = compile_conv(*conv2, "conv2", /*relu_after=*/true);
  LinearStage l1 = linear_stage(*fc1, "fc1", true);
  LinearStage l2 = linear_stage(*fc2, "fc2", true);
  LinearStage l3 = linear_stage(*fc3, "fc3", false);

  // Chain output scales to the consumer's expected input scale so the
  // inter-stage rescale is the identity (what a real compiler emits).
  c1.output_scale = c2.input_scale;
  c2.output_scale = l1.input_scale;
  l1.output_scale = l2.input_scale;
  l2.output_scale = l3.input_scale;
  // l3 keeps output_scale < 0: logits requantize from their own range.

  auto labelled = [](const char* label) {
    StageIO io;
    io.label = label;
    return io;
  };
  pipe.push(std::move(c1), labelled("conv1"));
  pipe.push(PoolStage{pool1->kernel(), pool1->stride()}, labelled("pool1"));
  pipe.push(std::move(c2), labelled("conv2"));
  pipe.push(PoolStage{pool2->kernel(), pool2->stride()}, labelled("pool2"));
  pipe.push(FlattenStage{}, labelled("flatten"));
  pipe.push(std::move(l1), labelled("fc1"));
  pipe.push(std::move(l2), labelled("fc2"));
  pipe.push(std::move(l3), labelled("fc3"));
  return pipe;
}

// ---- compile_resnet18 -------------------------------------------------------

namespace {

quant::RangeObserver& conv_input_observer(nn::Module& m, const std::string& name) {
  if (auto* c = dynamic_cast<nn::Conv2d*>(&m)) return c->input_observer();
  if (auto* w = dynamic_cast<core::WinogradAwareConv2d*>(&m)) return w->input_observer();
  throw std::invalid_argument("compile: unsupported conv layer type at " + name);
}

/// Per-channel batch-norm coefficients in real units: A = gamma * inv_std,
/// B = beta - A * mean.
void bn_coefficients(nn::BatchNorm2d& bn, Tensor* a, Tensor* b) {
  const Tensor& var = bn.running_var();
  const Tensor& mean = bn.running_mean();
  const Tensor gamma = bn.gamma().value();
  const Tensor beta = bn.beta().value();
  const std::int64_t c = var.numel();
  *a = Tensor(Shape{c});
  *b = Tensor(Shape{c});
  for (std::int64_t k = 0; k < c; ++k) {
    const float inv_std = 1.F / std::sqrt(var.at(k) + bn.eps());
    a->at(k) = gamma.at(k) * inv_std;
    b->at(k) = beta.at(k) - a->at(k) * mean.at(k);
  }
}

/// GEMM convolutions fold batch-norm into the quantized weights — the
/// standard deployment order (src/backend/bn_fold.hpp), valid because their
/// output scale is free to be anything the compiler chains.
ConvStage compile_folded_conv(nn::Conv2d& conv, nn::BatchNorm2d& bn, const std::string& name,
                              bool relu_after, float out_scale) {
  ConvStage st;
  st.relu_after = relu_after;
  const auto& o = conv.options();
  st.algo = o.algo;
  st.in_channels = o.in_channels;
  st.out_channels = o.out_channels;
  st.kernel = o.kernel;
  st.pad = o.pad;
  st.input_scale = observer_scale_checked(conv.input_observer(), name);
  const backend::FoldedConv folded = backend::fold_batchnorm(
      conv.weight().value(), conv.bias().defined() ? conv.bias().value() : Tensor(),
      bn.gamma().value(), bn.beta().value(), bn.running_mean(), bn.running_var(), bn.eps());
  st.weights_q = backend::quantize_s8(folded.weights);
  st.bias = folded.bias;
  st.output_scale = out_scale;
  return st;
}

BnStage make_bn_stage(nn::BatchNorm2d& bn, float in_scale, float out_scale, bool relu) {
  BnStage st;
  st.input_scale = in_scale;
  st.output_scale = out_scale;
  st.relu_after = relu;
  bn_coefficients(bn, &st.scale, &st.bias);
  return st;
}

/// Emit conv [+ batch-norm] onto the pipeline. GEMM convs fold the norm into
/// their weights; Winograd-aware convs must keep their frozen Qx scales (the
/// Hadamard/output observers saw the *unfolded* weights), so they emit the
/// conv at its trained y-scale followed by an integer per-channel affine.
void emit_conv_bn(Int8Pipeline& pipe, nn::Module& conv, nn::BatchNorm2d& bn,
                  const std::string& name, bool relu, float out_scale,
                  const std::string& input_slot) {
  if (auto* gemm = dynamic_cast<nn::Conv2d*>(&conv)) {
    StageIO io;
    io.input = input_slot;
    io.label = name + "+bn";
    pipe.push(compile_folded_conv(*gemm, bn, name, relu, out_scale), std::move(io));
    return;
  }
  ConvStage st = compile_conv(conv, name, /*relu_after=*/false);
  const float y_scale = st.stage_scales.output;
  StageIO cio;
  cio.input = input_slot;
  cio.label = name;
  pipe.push(std::move(st), std::move(cio));
  StageIO bio;
  bio.label = name + ".bn";
  pipe.push(make_bn_stage(bn, y_scale, out_scale, relu), std::move(bio));
}

}  // namespace

Int8Pipeline compile_resnet18(models::ResNet18& model) {
  model.set_training(false);
  Int8Pipeline pipe;
  const auto& blocks = model.blocks();
  if (blocks.empty()) throw std::invalid_argument("compile_resnet18: model has no blocks");

  // Stem: conv_in + bn_in fold, ReLU, published as the first block's input.
  const std::string stem_name = "conv_in";
  ConvStage stem = compile_folded_conv(
      model.conv_in(), model.bn_in(), stem_name, /*relu_after=*/true,
      observer_scale_checked(conv_input_observer(blocks[0]->conv1(), "stage1.block0.conv1"),
                             "stage1.block0.conv1"));
  std::string x_slot = "stem.out";
  float x_scale = stem.output_scale;
  {
    StageIO io;
    io.output = x_slot;
    io.label = stem_name + "+bn";
    pipe.push(std::move(stem), std::move(io));
  }

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    models::BasicBlock& b = *blocks[i];
    const std::string name =
        "stage" + std::to_string(i / 2 + 1) + ".block" + std::to_string(i % 2);
    const bool last = i + 1 == blocks.size();
    const float out_scale = observer_scale_checked(b.output_observer(), name + ".out");
    const float main_scale = observer_scale_checked(b.main_branch_observer(), name + ".main");

    // ---- skip branch first, so the main path can chain implicitly ----
    std::string skip_slot = x_slot;  // identity skip reads the block input
    float skip_scale = x_scale;
    if (b.shortcut() != nullptr) {
      skip_slot = name + ".skip";
      skip_scale = observer_scale_checked(b.skip_branch_observer(), name + ".skip");
      std::string conv_input = x_slot;
      if (b.downsample()) {
        StageIO io;
        io.input = x_slot;
        io.label = name + ".pool_short";
        pipe.push(PoolStage{2, 2}, std::move(io));
        conv_input.clear();  // shortcut conv chains off the pooled skip
      }
      StageIO io;
      io.input = conv_input;
      io.output = skip_slot;
      io.label = name + ".shortcut+bn";
      pipe.push(
          compile_folded_conv(*b.shortcut(), *b.bn_short(), name + ".shortcut",
                              /*relu_after=*/false, skip_scale),
          std::move(io));
    } else if (b.downsample()) {
      // Identity skip across a downsample (impossible in the stock topology,
      // where every downsample changes channels, but cheap to support).
      skip_slot = name + ".skip";
      StageIO io;
      io.input = x_slot;
      io.output = skip_slot;
      io.label = name + ".pool_short";
      pipe.push(PoolStage{2, 2}, std::move(io));
    }

    // ---- main path: [pool] conv1+bn1+relu, conv2+bn2 ----
    std::string main_input = x_slot;
    if (b.downsample()) {
      StageIO io;
      io.input = x_slot;
      io.label = name + ".pool";
      pipe.push(PoolStage{2, 2}, std::move(io));
      main_input.clear();
    }
    const float conv2_in =
        observer_scale_checked(conv_input_observer(b.conv2(), name + ".conv2"), name + ".conv2");
    emit_conv_bn(pipe, b.conv1(), b.bn1(), name + ".conv1", /*relu=*/true, conv2_in, main_input);
    emit_conv_bn(pipe, b.conv2(), b.bn2(), name + ".conv2", /*relu=*/false, main_scale, "");

    // ---- level-aligned residual join ----
    AddStage add;
    add.lhs_scale = main_scale;
    add.rhs_scale = skip_scale;
    add.output_scale = out_scale;
    add.relu_after = true;
    StageIO io;
    io.input2 = skip_slot;
    if (!last) io.output = name + ".out";
    io.label = name + ".add";
    pipe.push(std::move(add), std::move(io));

    x_slot = name + ".out";
    x_scale = out_scale;
  }

  {
    StageIO io;
    io.label = "gap";
    pipe.push(AvgPoolStage{}, std::move(io));
  }
  LinearStage fc;
  fc.input_scale = observer_scale_checked(model.fc().input_observer(), "fc");
  fc.weights_q = backend::quantize_s8(model.fc().weight().value());
  if (model.fc().bias().defined()) fc.bias = model.fc().bias().value();
  // fc keeps output_scale < 0: logits requantize from their own range.
  {
    StageIO io;
    io.label = "fc";
    pipe.push(std::move(fc), std::move(io));
  }
  return pipe;
}

}  // namespace wa::deploy
