#include "deploy/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "backend/bn_fold.hpp"
#include "core/wa_conv2d.hpp"

namespace wa::deploy {

using backend::QTensor;

namespace {

/// Remap int8 levels from one scale to another (identity when they match).
QTensor rescale_s8(QTensor x, float target_scale) {
  if (target_scale <= 0.F || std::fabs(x.scale - target_scale) < 1e-12F) return x;
  const float ratio = x.scale / target_scale;
  for (auto& v : x.data) {
    const float q = std::nearbyint(static_cast<float>(v) * ratio);
    v = static_cast<std::int8_t>(std::min(127.F, std::max(-127.F, q)));
  }
  x.scale = target_scale;
  return x;
}

std::string stage_type_name(const Stage& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage>) return "conv";
        else if constexpr (std::is_same_v<T, PoolStage>) return "max-pool";
        else if constexpr (std::is_same_v<T, FlattenStage>) return "flatten";
        else if constexpr (std::is_same_v<T, AvgPoolStage>) return "avg-pool";
        else if constexpr (std::is_same_v<T, LinearStage>) return "linear";
        else if constexpr (std::is_same_v<T, BnStage>) return "batch-norm";
        else if constexpr (std::is_same_v<T, AddStage>) return "add";
        else if constexpr (std::is_same_v<T, ConcatStage>) return "concat";
        else if constexpr (std::is_same_v<T, ReluStage>) return "relu";
        else return "requant";
      },
      s);
}

void expect(bool cond, const std::string& where, const std::string& msg) {
  if (!cond) throw std::invalid_argument(where + ": " + msg);
}

backend::ConvGeometry conv_geometry(const ConvStage& st, const Shape& in_shape) {
  backend::ConvGeometry g;
  g.batch = in_shape[0];
  g.in_channels = st.in_channels;
  g.height = in_shape[2];
  g.width = in_shape[3];
  g.out_channels = st.out_channels;
  g.kernel = st.kernel;
  g.pad = st.pad;
  g.groups = st.groups;
  g.stride = st.stride;
  return g;
}

void check_conv_input(const ConvStage& st, const QTensor& x, const std::string& where) {
  // Validate the activation against the stage BEFORE building the geometry:
  // a mis-assembled pipeline (e.g. a conv fed a flattened [N, F] tensor)
  // must fail loudly here, not read past the end of the shape array.
  expect(x.shape.size() == 4, where,
         "convolution expects a 4-d [N,C,H,W] activation, got " + to_string(x.shape));
  expect(x.shape[1] == st.in_channels, where,
         "activation has " + std::to_string(x.shape[1]) + " channels, stage expects " +
             std::to_string(st.in_channels));
  const std::int64_t oh = (x.shape[2] + 2 * st.pad - st.kernel) / st.stride + 1;
  const std::int64_t ow = (x.shape[3] + 2 * st.pad - st.kernel) / st.stride + 1;
  expect(oh >= 1 && ow >= 1, where,
         "activation " + to_string(x.shape) + " is smaller than the " +
             std::to_string(st.kernel) + "x" + std::to_string(st.kernel) + " kernel");
}

}  // namespace

bool rescale_changes_levels(float current, float target) {
  return target > 0.F && std::fabs(current - target) >= 1e-12F;
}

std::string stage_where(const Int8Pipeline::Node& node, std::size_t index) {
  return node.io.label.empty()
             ? "stage " + std::to_string(index) + " (" + stage_type_name(node.op) + ")"
             : node.io.label;
}

void ConvStage::prepare() {
  if (nn::is_winograd(algo) && stride == 2) {
    // Stride-2 Winograd lowers through the polyphase cache — but only where
    // the decomposition actually wins. The polyphase executor trades GEMM
    // volume (7.25·C·K vs im2row's 9·C·K per output pixel) for a multi-pass
    // fp32 join, which loses below C=K≈288 (bench/zoo_deploy measured it at
    // 0.60x at C=K=64), and it cannot run grouped at all. The cost model
    // picks the winner at prepare time; WA_STRIDED_POLY / the policy setter
    // force either path for differential tests and benches.
    const auto policy = backend::strided_polyphase_policy();
    const bool use_poly =
        groups == 1 &&
        (policy == backend::StridedPolicy::kForcePolyphase ||
         (policy == backend::StridedPolicy::kAuto &&
          backend::strided_polyphase_profitable(in_channels, out_channels)));
    if (!use_poly) {
      // Fallback: requantize the fp32 taps and run the stage as a plain
      // strided im2row GEMM. The algo flips to kIm2row so the stage's
      // serialized cache kind (0) and algo stay consistent (.wam contract).
      algo = nn::ConvAlgo::kIm2row;
      if (output_scale <= 0.F && stage_scales.output > 0.F) output_scale = stage_scales.output;
      weights_q = backend::quantize_s8(weights_f);
      weights_f = Tensor();
      im2row_cache = backend::prepare_im2row_weights_s8(weights_q, groups);
      weights_q = backend::QTensor{};  // only the packed copy is consulted
      return;
    }
    // The phase-00 subplane conv runs F(m, 2) over the 2x2 even/even weight
    // taps, so the stage's training-time F(m, 3) transform set is replaced
    // by the canonical F(m, 2) one here (the rect phases use no transform
    // at all).
    if (transforms.r != 2) {
      transforms = wino::make_transforms(transforms.m > 0 ? transforms.m : 2, 2);
    }
    strided_cache = backend::prepare_strided_winograd_weights_s8(
        weights_f, transforms, stage_scales.weights_transformed);
    stage_scales.weights_transformed = strided_cache.u00.scale;
    weights_f = Tensor();  // only the cached phases are consulted from here on
  } else if (nn::is_winograd(algo)) {
    wino_cache = backend::prepare_winograd_weights_s8(
        weights_f, transforms, stage_scales.weights_transformed,
        stage_scales.weights_transformed_taps, groups,
        sparse_mask.numel() > 0 ? &sparse_mask : nullptr);
    // The derived scale is now frozen: per-forward scale rediscovery would
    // otherwise disagree with the cached levels. Per-tap U scales travel the
    // same way (the cache records the vector it baked).
    stage_scales.weights_transformed = wino_cache.scale;
    stage_scales.weights_transformed_taps = wino_cache.tap_scales;
    weights_f = Tensor();       // only the cached U is consulted from here on
    sparse_mask = Tensor();     // baked into the cache (zeroed U + tap_mask)
  } else {
    im2row_cache = backend::prepare_im2row_weights_s8(weights_q, groups);
    weights_q = backend::QTensor{};  // only the packed copy is consulted
  }
}

void LinearStage::prepare() {
  packed = prepare_linear_weights_s8(weights_q);
  weights_q = backend::QTensor{};  // only the packed copy is consulted
}

void BnStage::prepare() {
  if (input_scale <= 0.F || output_scale <= 0.F) {
    throw std::invalid_argument("BnStage: input and output scales must be frozen (> 0)");
  }
  affine = prepare_channel_affine_s8(scale, bias, input_scale, output_scale);
}

void AddStage::prepare() {
  if (output_scale <= 0.F) {
    throw std::invalid_argument("AddStage: output scale must be frozen (> 0)");
  }
  lhs_ratio = make_requant_ratio(lhs_scale, output_scale);
  rhs_ratio = make_requant_ratio(rhs_scale, output_scale);
  prepared_ = true;
}

void ConcatStage::prepare() {
  if (output_scale <= 0.F) {
    throw std::invalid_argument("ConcatStage: output scale must be frozen (> 0)");
  }
  lhs_ratio = make_requant_ratio(lhs_scale, output_scale);
  rhs_ratio = make_requant_ratio(rhs_scale, output_scale);
  prepared_ = true;
}

void RequantStage::prepare() {
  if (input_scale <= 0.F || output_scale <= 0.F) {
    throw std::invalid_argument("RequantStage: input and output scales must be frozen (> 0)");
  }
  ratio = make_requant_ratio(input_scale, output_scale);
  prepared_ = true;
}

void Int8Pipeline::push(Stage s, StageIO io, std::vector<EpilogueOp> epilogue) {
  const std::string where =
      "Int8Pipeline::push(" +
      (io.label.empty() ? "stage " + std::to_string(nodes_.size()) : io.label) + ")";
  const bool is_join =
      std::holds_alternative<AddStage>(s) || std::holds_alternative<ConcatStage>(s);
  expect(!is_join || !io.input2.empty(), where,
         "a join stage (add/concat) needs a second operand — set io.input2 to a published slot");
  expect(is_join || io.input2.empty(), where,
         "io.input2 is only meaningful for a join stage (add/concat)");

  // Graph sanity at load time: named inputs must be published by an earlier
  // stage, outputs must be fresh, and an implicit input needs the previous
  // stage to actually chain (not publish to a slot).
  std::set<std::string> published;
  for (const Node& n : nodes_) {
    if (!n.io.output.empty()) published.insert(n.io.output);
  }
  for (const std::string* in : {&io.input, &io.input2}) {
    expect(in->empty() || published.count(*in) > 0, where,
           "input slot '" + *in + "' is not produced by any earlier stage");
  }
  expect(io.output.empty() || published.count(io.output) == 0, where,
         "output slot '" + io.output + "' is already taken");
  if (io.input.empty() && !nodes_.empty() && !nodes_.back().io.output.empty()) {
    throw std::invalid_argument(where +
                                ": no implicit input — the previous stage publishes to slot '" +
                                nodes_.back().io.output + "'; name it as io.input");
  }
  if (!io.input.empty() && !nodes_.empty() && nodes_.back().io.output.empty()) {
    // The mirror case: reading a named slot here would silently discard the
    // previous stage's chained output (its work would run and be dropped).
    throw std::invalid_argument(where + ": reading slot '" + io.input +
                                "' would drop the previous stage's chained output — publish "
                                "that output to a slot (io.output) or consume it implicitly");
  }

  // Finalise weight caches / fixed-point multipliers at load so no forward
  // ever pays for them.
  std::visit(
      [](auto& st) {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage> || std::is_same_v<T, LinearStage> ||
                      std::is_same_v<T, BnStage> || std::is_same_v<T, AddStage> ||
                      std::is_same_v<T, ConcatStage> || std::is_same_v<T, RequantStage>) {
          if (!st.prepared()) st.prepare();
        }
      },
      s);
  // Any attached plan indexes the old schedule; growing the graph voids it.
  plan_.reset();
  nodes_.push_back({std::move(s), std::move(io), std::move(epilogue), {}});
}

std::vector<Int8Pipeline::Node> Int8Pipeline::take_nodes() {
  plan_.reset();
  std::vector<Node> out;
  out.swap(nodes_);
  return out;
}

Int8Pipeline::Wiring Int8Pipeline::resolve_wiring(bool reject_dead) const {
  const std::size_t n = nodes_.size();
  Wiring w;
  w.in1.assign(n, -1);
  w.in2.assign(n, -1);
  w.use_count.assign(n + 1, 0);
  w.last_use.assign(n + 1, -1);
  std::map<std::string, std::int32_t> slot_value;  // published slot -> value index

  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    // Error labels are built lazily: this resolution runs on every forward
    // and must stay allocation-lean on the success path.
    const auto where = [&node, i] { return stage_where(node, i); };
    const bool is_join = std::holds_alternative<AddStage>(node.op) ||
                         std::holds_alternative<ConcatStage>(node.op);
    if (is_join && node.io.input2.empty()) {
      throw std::invalid_argument(
          where() +
          ": a join stage (add/concat) needs a second operand — set io.input2 to a published "
          "slot");
    }
    if (!is_join && !node.io.input2.empty()) {
      throw std::invalid_argument(where() +
                                  ": io.input2 is only meaningful for a join stage (add/concat)");
    }

    if (node.io.input.empty()) {
      if (i > 0 && !nodes_[i - 1].io.output.empty()) {
        throw std::invalid_argument(where() +
                                    ": no implicit input — the previous stage publishes to slot '" +
                                    nodes_[i - 1].io.output + "'; name it as io.input");
      }
      w.in1[i] = i == 0 ? 0 : static_cast<std::int32_t>(i);
    } else {
      if (i > 0 && nodes_[i - 1].io.output.empty()) {
        throw std::invalid_argument(where() + ": reading slot '" + node.io.input +
                                    "' would drop the previous stage's chained output — publish "
                                    "that output to a slot (io.output) or consume it implicitly");
      }
      const auto it = slot_value.find(node.io.input);
      if (it == slot_value.end()) {
        throw std::invalid_argument(where() + ": input slot '" + node.io.input +
                                    "' is not produced by any earlier stage");
      }
      w.in1[i] = it->second;
    }
    if (!node.io.input2.empty()) {
      const auto it = slot_value.find(node.io.input2);
      if (it == slot_value.end()) {
        throw std::invalid_argument(where() + ": input slot '" + node.io.input2 +
                                    "' is not produced by any earlier stage");
      }
      w.in2[i] = it->second;
    }
    if (!node.io.output.empty()) {
      if (slot_value.count(node.io.output) != 0) {
        throw std::invalid_argument(where() + ": output slot '" + node.io.output +
                                    "' is already taken");
      }
      slot_value[node.io.output] = static_cast<std::int32_t>(i + 1);
    }

    for (const std::int32_t v : {w.in1[i], w.in2[i]}) {
      if (v < 0) continue;
      ++w.use_count[static_cast<std::size_t>(v)];
      w.last_use[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
    }
  }

  // Only the final stage may publish without a reader (it is the result).
  if (reject_dead) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (!nodes_[i].io.output.empty() && w.use_count[i + 1] == 0) {
        throw std::invalid_argument(stage_where(nodes_[i], i) + ": published slot '" +
                                    nodes_[i].io.output +
                                    "' is never consumed — dead dataflow");
      }
    }
  }
  return w;
}

void Int8Pipeline::set_plan(MemoryPlan plan) {
  const std::size_t n = nodes_.size();
  const auto bad = [](const std::string& why) {
    throw std::invalid_argument("Int8Pipeline::set_plan: " + why);
  };
  if (plan.in_place.size() != n) bad("in_place marks do not match the stage count");
  if (plan.value_bytes.size() != n + 1 || plan.offsets.size() != n + 1 ||
      plan.last_use.size() != n + 1) {
    bad("per-value tables do not match the schedule (stages + input)");
  }
  for (const std::uint8_t m : plan.in_place) {
    if (m > 2) bad("in_place mark out of range (0, 1 or 2)");
  }
  for (std::size_t v = 0; v <= n; ++v) {
    if (plan.value_bytes[v] < 0) bad("negative value size");
    if (plan.offsets[v] < 0) bad("negative arena offset");
    if (plan.offsets[v] + plan.value_bytes[v] > plan.arena_bytes) {
      bad("value extends past the arena");
    }
    if (plan.last_use[v] < -1 || plan.last_use[v] >= static_cast<std::int32_t>(n)) {
      bad("last_use stage out of range");
    }
  }
  if (plan.peak_bytes < 0 || plan.naive_peak_bytes < 0 || plan.arena_bytes < 0) {
    bad("negative byte totals");
  }
  if (numel(plan.reference_input) <= 0 || plan.reference_input.size() != 4) {
    bad("reference input shape must be a non-empty [N,C,H,W]");
  }
  plan_ = std::move(plan);
}

Tensor Int8Pipeline::run(const Tensor& input, std::vector<StageTiming>* timings,
                         RunStats* stats, telemetry::TraceContext trace) const {
  return run_impl(input, timings, nullptr, stats, trace);
}

Tensor Int8Pipeline::run_impl(const Tensor& input, std::vector<StageTiming>* timings,
                              std::vector<float>* out_scales, RunStats* stats,
                              telemetry::TraceContext trace) const {
  if (nodes_.empty()) throw std::invalid_argument("Int8Pipeline::run: empty pipeline");
  const auto* first = std::get_if<ConvStage>(&nodes_.front().op);
  if (first == nullptr) {
    throw std::invalid_argument("Int8Pipeline::run: pipeline must start with a convolution");
  }
  const std::size_t n = nodes_.size();
  if (timings != nullptr) {
    timings->clear();
    timings->reserve(n);
  }

  const Wiring w = resolve_wiring();
  const MemoryPlan* plan =
      plan_.has_value() && plan_->in_place.size() == n ? &*plan_ : nullptr;

  // Values: 0 = quantized input, i+1 = stage i's output. Buffers are
  // accounted by capacity from materialization to last use; `live` tracks
  // the executor-owned activation bytes, `peak` their high-water mark (what
  // MemoryPlan::peak_bytes predicts for the reference shape).
  std::vector<QTensor> vals(n + 1);
  std::vector<std::int32_t> refs = w.use_count;
  std::vector<std::int64_t> caps(n + 1, 0);
  std::int64_t live = 0, peak = 0;
  RunStats rs;

  const auto record = [&](std::size_t v, QTensor&& t) {
    caps[v] = static_cast<std::int64_t>(t.data.capacity());
    live += caps[v];
    if (live > peak) peak = live;
    vals[v] = std::move(t);
  };
  const auto release = [&](std::int32_t v) {
    if (v < 0) return;
    if (--refs[static_cast<std::size_t>(v)] == 0) {
      live -= caps[static_cast<std::size_t>(v)];
      caps[static_cast<std::size_t>(v)] = 0;
      vals[static_cast<std::size_t>(v)] = QTensor{};
    }
  };

  {
    QTensor q = backend::quantize_s8(input, first->input_scale);
    if (out_scales != nullptr) {
      out_scales->assign(n + 1, -1.F);
      (*out_scales)[0] = q.scale;  // the input quantizer's (possibly derived) scale
    }
    rs.allocated_bytes += static_cast<std::int64_t>(q.data.capacity());
    record(0, std::move(q));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    const std::string where = stage_where(node, i);
    const auto t0 = std::chrono::steady_clock::now();

    const std::int32_t v1 = w.in1[i], v2 = w.in2[i];
    const bool same_operand = v2 >= 0 && v1 == v2;
    // This stage performs the value's final read(s) — it may take ownership.
    const bool owned1 =
        !same_operand && refs[static_cast<std::size_t>(v1)] == 1;
    const bool owned2 =
        v2 >= 0 && !same_operand && refs[static_cast<std::size_t>(v2)] == 1;

    // Acquire an operand at the stage's expected scale. Owned operands are
    // moved (and rescaled in place); borrowed operands are passed by
    // reference, copied only when a rescale would mutate them (the value has
    // later readers at its original scale).
    QTensor held1, held2;
    std::int64_t copy_bytes = 0;
    const auto acquire = [&](std::int32_t v, bool owned, float expected,
                             QTensor& held) -> const QTensor* {
      QTensor& src = vals[static_cast<std::size_t>(v)];
      if (owned) {
        held = rescale_s8(std::move(src), expected);
        return &held;
      }
      if (rescale_changes_levels(src.scale, expected)) {
        held = src;  // later readers still need the original levels
        copy_bytes += static_cast<std::int64_t>(held.data.capacity());
        ++rs.input_copies;
        held = rescale_s8(std::move(held), expected);
        return &held;
      }
      return &src;
    };

    const std::uint8_t mark = plan != nullptr ? plan->in_place[i] : 0;
    // Per-phase accumulator for traced Winograd convs; a null pointer keeps
    // the executors clock-free on untraced forwards.
    backend::WinoPhaseNs phase_ns;
    QTensor out;
    bool donated = false;       // the output took over an operand's buffer
    bool plan_donated = false;  // ... because the plan said so
    std::int32_t donor_v = -1;  // donated: the value whose buffer was consumed

    std::visit(
        [&](const auto& st) {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            const QTensor* x = acquire(v1, owned1, st.input_scale, held1);
            check_conv_input(st, *x, where);
            const backend::ConvGeometry g = conv_geometry(st, x->shape);
            std::vector<std::int8_t>* reuse = nullptr;
            if (mark == 1 && x == &held1 && owned1) {
              // The kernel fully consumes the input before materializing the
              // output, so the dying input's buffer either hosts the output
              // (fits) or is freed before the output is allocated (grow) —
              // either way the two never coexist.
              reuse = &held1.data;
              donated = plan_donated = true;
              donor_v = v1;
            }
            if (!st.strided_cache.empty()) {
              out = backend::strided_winograd_conv_s8_prepared(
                  *x, st.strided_cache, g, st.transforms, st.stage_scales,
                  st.bias.empty() ? nullptr : &st.bias, reuse);
            } else if (nn::is_winograd(st.algo)) {
              out = backend::winograd_conv_s8_prepared(*x, st.wino_cache, g, st.transforms,
                                                       st.stage_scales,
                                                       st.bias.empty() ? nullptr : &st.bias,
                                                       reuse,
                                                       trace.valid() ? &phase_ns : nullptr);
            } else {
              out = backend::im2row_conv_s8_prepared(*x, st.im2row_cache, g, st.output_scale,
                                                     st.bias.empty() ? nullptr : &st.bias,
                                                     reuse);
            }
            if (st.relu_after) out = relu_s8(std::move(out));
          } else if constexpr (std::is_same_v<T, PoolStage>) {
            const QTensor* x = acquire(v1, owned1, -1.F, held1);
            expect(x->shape.size() == 4, where,
                   "max-pool expects [N,C,H,W], got " + to_string(x->shape));
            out = max_pool_s8(*x, st.kernel, st.stride);
          } else if constexpr (std::is_same_v<T, FlattenStage>) {
            const QTensor* x = acquire(v1, owned1, -1.F, held1);
            if (x == &held1) {
              out = flatten_s8(std::move(held1));
              donated = true;  // pure metadata change — the buffer carries over
              donor_v = v1;
            } else {
              out = flatten_s8(*x);  // copy: the value has later readers
            }
          } else if constexpr (std::is_same_v<T, AvgPoolStage>) {
            const QTensor* x = acquire(v1, owned1, -1.F, held1);
            expect(x->shape.size() == 4, where,
                   "avg-pool expects [N,C,H,W], got " + to_string(x->shape));
            out = global_avg_pool_s8(*x);
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            const QTensor* x = acquire(v1, owned1, st.input_scale, held1);
            expect(x->shape.size() == 2, where,
                   "linear expects a 2-d [N, F] activation, got " + to_string(x->shape) +
                       " (flatten or avg-pool first)");
            expect(x->shape[1] == st.packed.in_features, where,
                   "activation has " + std::to_string(x->shape[1]) +
                       " features, stage expects " + std::to_string(st.packed.in_features));
            out = linear_s8_prepared(*x, st.packed, st.bias, st.output_scale);
            if (st.relu_after) out = relu_s8(std::move(out));
          } else if constexpr (std::is_same_v<T, BnStage>) {
            const QTensor* x = acquire(v1, owned1, st.input_scale, held1);
            expect(x->shape.size() == 4 || x->shape.size() == 2, where,
                   "batch-norm expects [N,C,H,W] or [N,C], got " + to_string(x->shape));
            expect(x->shape[1] == st.scale.numel(), where,
                   "activation has " + std::to_string(x->shape[1]) +
                       " channels, batch-norm has " + std::to_string(st.scale.numel()));
            if (mark == 1 && x == &held1 && owned1) {
              channel_affine_s8_(held1, st.affine, st.relu_after);
              out = std::move(held1);
              donated = plan_donated = true;
              donor_v = v1;
            } else {
              out = channel_affine_s8(*x, st.affine, st.relu_after);
            }
          } else if constexpr (std::is_same_v<T, AddStage>) {
            const QTensor* lhs;
            const QTensor* rhs;
            if (same_operand) {
              // x + x: acquire the value once; materialize separate copies
              // only when the two branch scales actually diverge.
              const bool owned = refs[static_cast<std::size_t>(v1)] == 2;
              if (rescale_changes_levels(vals[static_cast<std::size_t>(v1)].scale, st.lhs_scale) ||
                  rescale_changes_levels(vals[static_cast<std::size_t>(v1)].scale, st.rhs_scale)) {
                held1 = vals[static_cast<std::size_t>(v1)];
                copy_bytes += static_cast<std::int64_t>(held1.data.capacity());
                ++rs.input_copies;
                held1 = rescale_s8(std::move(held1), st.lhs_scale);
                lhs = &held1;
                rhs = acquire(v1, owned, st.rhs_scale, held2);
              } else {
                lhs = rhs = acquire(v1, owned, st.lhs_scale, held2);
              }
            } else {
              lhs = acquire(v1, owned1, st.lhs_scale, held1);
              rhs = acquire(v2, owned2, st.rhs_scale, held2);
            }
            expect(lhs->shape == rhs->shape, where,
                   "skip-add branch shapes " + to_string(lhs->shape) + " vs " +
                       to_string(rhs->shape) + " do not match");
            if (mark == 1 && lhs == &held1 && owned1 && !same_operand) {
              add_s8_into(held1, *rhs, st.lhs_ratio, st.rhs_ratio, st.output_scale,
                          st.relu_after);
              out = std::move(held1);
              donated = plan_donated = true;
              donor_v = v1;
            } else if (mark == 2 && rhs == &held2 && owned2 && !same_operand) {
              add_s8_into(held2, *lhs, st.rhs_ratio, st.lhs_ratio, st.output_scale,
                          st.relu_after);
              out = std::move(held2);
              donated = plan_donated = true;
              donor_v = v2;
            } else {
              out = add_s8(*lhs, *rhs, st.lhs_ratio, st.rhs_ratio, st.output_scale,
                           st.relu_after);
            }
          } else if constexpr (std::is_same_v<T, ConcatStage>) {
            // The channel-concat join mirrors AddStage's operand acquisition
            // but never writes in place: the output is strictly larger than
            // either operand, so the planner marks it 0 unconditionally.
            const QTensor* lhs;
            const QTensor* rhs;
            if (same_operand) {
              const bool owned = refs[static_cast<std::size_t>(v1)] == 2;
              if (rescale_changes_levels(vals[static_cast<std::size_t>(v1)].scale, st.lhs_scale) ||
                  rescale_changes_levels(vals[static_cast<std::size_t>(v1)].scale, st.rhs_scale)) {
                held1 = vals[static_cast<std::size_t>(v1)];
                copy_bytes += static_cast<std::int64_t>(held1.data.capacity());
                ++rs.input_copies;
                held1 = rescale_s8(std::move(held1), st.lhs_scale);
                lhs = &held1;
                rhs = acquire(v1, owned, st.rhs_scale, held2);
              } else {
                lhs = rhs = acquire(v1, owned, st.lhs_scale, held2);
              }
            } else {
              lhs = acquire(v1, owned1, st.lhs_scale, held1);
              rhs = acquire(v2, owned2, st.rhs_scale, held2);
            }
            expect(lhs->shape.size() == 4 && rhs->shape.size() == 4, where,
                   "concat expects 4-d [N,C,H,W] operands, got " + to_string(lhs->shape) +
                       " and " + to_string(rhs->shape));
            expect(lhs->shape[0] == rhs->shape[0] && lhs->shape[2] == rhs->shape[2] &&
                       lhs->shape[3] == rhs->shape[3],
                   where,
                   "concat branch shapes " + to_string(lhs->shape) + " vs " +
                       to_string(rhs->shape) + " disagree outside the channel axis");
            out = concat_s8(*lhs, *rhs, st.lhs_ratio, st.rhs_ratio, st.output_scale,
                            st.relu_after);
          } else if constexpr (std::is_same_v<T, ReluStage>) {
            const QTensor* x = acquire(v1, owned1, -1.F, held1);
            if (x == &held1) {
              out = relu_s8(std::move(held1));
              donated = true;
              donor_v = v1;
            } else {
              out = relu_s8(*x);  // by-value copy: the value has later readers
            }
          } else {  // RequantStage
            const QTensor* x = acquire(v1, owned1, st.input_scale, held1);
            if (x == &held1) {
              requant_s8_(held1, st.ratio, st.output_scale);
              out = std::move(held1);
              donated = true;
              if (owned1) donor_v = v1;  // else the rescale copy hosts it
            } else {
              held1 = *x;
              copy_bytes += static_cast<std::int64_t>(held1.data.capacity());
              ++rs.input_copies;
              requant_s8_(held1, st.ratio, st.output_scale);
              out = std::move(held1);
              donated = true;  // the copy itself becomes the output
            }
          }
        },
        node.op);

    // Fused epilogues: in-place post-ops on the producing stage's output —
    // arithmetically identical to the standalone stages they replaced.
    for (const EpilogueOp& ep : node.epilogue) {
      switch (ep.kind) {
        case EpilogueOp::Kind::kRelu:
          out = relu_s8(std::move(out));
          break;
        case EpilogueOp::Kind::kRequant:
          requant_s8_(out, ep.ratio, ep.out_scale);
          break;
        case EpilogueOp::Kind::kAffine:
          expect(out.shape.size() == 4 || out.shape.size() == 2, where,
                 "fused batch-norm expects [N,C,H,W] or [N,C], got " + to_string(out.shape));
          expect(out.shape[1] == static_cast<std::int64_t>(ep.affine.m0.size()), where,
                 "activation has " + std::to_string(out.shape[1]) +
                     " channels, fused batch-norm has " + std::to_string(ep.affine.m0.size()));
          channel_affine_s8_(out, ep.affine, ep.relu);
          break;
      }
    }

    if (timings != nullptr || trace.valid() || telemetry::metrics_enabled()) {
      const auto t1 = std::chrono::steady_clock::now();
      const auto dur_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
      node.ema.observe(dur_ns);  // always-available smoothed per-stage latency
      if (timings != nullptr) {
        timings->push_back({where, static_cast<double>(dur_ns) / 1e6});
      }
      if (trace.valid()) {
        auto& tracer = telemetry::Tracer::instance();
        const std::int64_t ts0 = tracer.to_ns(t0);
        tracer.emit({"stage:" + where, "pipeline", trace.id, ts0, dur_ns, {}});
        // Blocked-Winograd phase breakdown: the accumulators are CPU-time
        // sums across the OpenMP team, so lay the four sub-spans out
        // proportionally inside the stage's wall-clock interval and carry
        // the raw nanoseconds in args.
        if (const std::int64_t total = phase_ns.total(); total > 0) {
          const char* names[4] = {"wino.scatter", "wino.gemm", "wino.requant", "wino.gather"};
          const std::int64_t ns[4] = {
              phase_ns.scatter.load(std::memory_order_relaxed),
              phase_ns.gemm.load(std::memory_order_relaxed),
              phase_ns.requant.load(std::memory_order_relaxed),
              phase_ns.gather.load(std::memory_order_relaxed)};
          std::int64_t cursor = ts0;
          for (int p = 0; p < 4; ++p) {
            const std::int64_t sub = dur_ns * ns[p] / total;
            tracer.emit({names[p], "kernel", trace.id, cursor, sub,
                         "\"cpu_ns\":" + std::to_string(ns[p])});
            cursor += sub;
          }
        }
      }
    }
    if (out_scales != nullptr) (*out_scales)[i + 1] = out.scale;

    // Peak accounting: while the stage ran, every not-yet-released input was
    // still live alongside any rescale copies and — unless the output took
    // over (or grow-replaced) an operand's buffer — the output itself. A
    // grow-donation frees the donor before the larger output is allocated,
    // so only the growth is additional.
    const auto out_cap = static_cast<std::int64_t>(out.data.capacity());
    const std::int64_t donor_cap = donor_v >= 0 ? caps[static_cast<std::size_t>(donor_v)] : out_cap;
    const std::int64_t transient =
        live + copy_bytes +
        (donated ? std::max<std::int64_t>(0, out_cap - donor_cap) : out_cap);
    if (transient > peak) peak = transient;
    // A fresh buffer was allocated unless the output genuinely reuses an
    // operand's storage (a grow-donation frees the donor and allocates anew).
    if (!donated || out_cap > donor_cap) rs.allocated_bytes += out_cap;
    if (plan_donated) ++rs.inplace_reuses;

    release(v1);
    if (v2 >= 0) release(v2);
    record(i + 1, std::move(out));
  }

  rs.peak_activation_bytes = peak;
  if (stats != nullptr) *stats = rs;
  return backend::dequantize(vals[n]);
}

Tensor Int8Pipeline::run_batched(const Tensor& input, std::int64_t micro_batch) const {
  if (input.dim() < 1) throw std::invalid_argument("Int8Pipeline::run_batched: scalar input");
  const std::int64_t n = input.size(0);
  if (micro_batch <= 0 || micro_batch >= n) return run(input);
  // Splitting re-derives every dynamic scale from each chunk's own
  // statistics, so two identical samples could quantize differently based on
  // which neighbours they were coalesced with. Serving cannot tolerate that;
  // reject deterministically instead of silently perturbing logits.
  if (const auto dynamic = dynamic_scale_labels(); !dynamic.empty()) {
    throw std::invalid_argument(
        "Int8Pipeline::run_batched: splitting a batch across stages with dynamic scales would "
        "make results depend on batch composition — freeze_scales() first (dynamic: " +
        join_labels(dynamic) + ")");
  }
  std::vector<Tensor> chunks;
  chunks.reserve(static_cast<std::size_t>((n + micro_batch - 1) / micro_batch));
  for (std::int64_t b0 = 0; b0 < n; b0 += micro_batch) {
    chunks.push_back(run(input.slice0(b0, std::min(n, b0 + micro_batch))));
  }
  return Tensor::concat(chunks, 0);
}

std::string Int8Pipeline::join_labels(const std::vector<std::string>& labels) {
  std::string out;
  for (const std::string& l : labels) out += (out.empty() ? "" : ", ") + l;
  return out;
}

std::vector<std::string> Int8Pipeline::dynamic_scale_labels() const {
  std::vector<std::string> out;
  const auto where = [this](std::size_t i) { return stage_where(nodes_[i], i); };
  if (!nodes_.empty()) {
    if (const auto* first = std::get_if<ConvStage>(&nodes_.front().op);
        first != nullptr && first->input_scale <= 0.F) {
      out.push_back(where(0) + ".input-quantizer");
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::visit(
        [&](const auto& st) {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            if (nn::is_winograd(st.algo)) {
              // The Winograd kernel reads its scales from stage_scales, not
              // output_scale; V/M are internal stages, Y is the output.
              if (st.stage_scales.input_transformed <= 0.F) out.push_back(where(i) + ".v");
              if (st.stage_scales.hadamard <= 0.F) out.push_back(where(i) + ".m");
              if (st.stage_scales.output <= 0.F) out.push_back(where(i) + ".y");
            } else if (st.output_scale <= 0.F) {
              out.push_back(where(i));
            }
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            if (st.output_scale <= 0.F) out.push_back(where(i));
          }
          // Pool/flatten/avg-pool/relu pass levels through unchanged;
          // BnStage, AddStage and RequantStage refuse to prepare() without
          // frozen scales, and epilogues carry frozen scales by construction
          // (the fusion pass only folds stages whose scales are pinned).
        },
        nodes_[i].op);
  }
  return out;
}

void Int8Pipeline::freeze_scales(const Tensor& calibration) {
  if (all_scales_frozen()) return;
  // Internal Winograd scales (V, M) are derived inside the kernel and never
  // surfaced, so a calibration forward cannot capture them.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto* st = std::get_if<ConvStage>(&nodes_[i].op);
    if (st == nullptr || !nn::is_winograd(st->algo)) continue;
    const std::string label =
        nodes_[i].io.label.empty() ? "stage " + std::to_string(i) : nodes_[i].io.label;
    // Per-tap stages must arrive fully frozen from training: a calibration
    // forward can no more capture one dynamic tap than a dynamic tensor
    // scale. Name the exact stage and tap so the fix is obvious.
    const auto check_taps = [&](const std::vector<float>& taps, const char* stage_name) {
      for (std::size_t ab = 0; ab < taps.size(); ++ab) {
        if (taps[ab] <= 0.F) {
          throw std::invalid_argument(
              "Int8Pipeline::freeze_scales: " + label + " Winograd stage " + stage_name +
              " tap " + std::to_string(ab) +
              " has a dynamic per-tap scale that only the kernel sees — per-tap scale vectors "
              "must arrive fully frozen from training");
        }
      }
    };
    check_taps(st->stage_scales.weights_transformed_taps, "U");
    check_taps(st->stage_scales.input_transformed_taps, "V");
    check_taps(st->stage_scales.hadamard_taps, "M");
    if (st->stage_scales.input_transformed <= 0.F || st->stage_scales.hadamard <= 0.F) {
      throw std::invalid_argument(
          "Int8Pipeline::freeze_scales: " + label +
          " has dynamic internal Winograd scales (V/M) that only the kernel sees — deploy it "
          "with observer-frozen stage scales (compile_lenet/compile_resnet18 do)");
    }
  }
  std::vector<float> scales;
  run_impl(calibration, nullptr, &scales, nullptr, {});
  if (auto* first = std::get_if<ConvStage>(&nodes_.front().op); first->input_scale <= 0.F) {
    first->input_scale = scales[0];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::visit(
        [&](auto& st) {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            if (st.output_scale <= 0.F) st.output_scale = scales[i + 1];
            if (nn::is_winograd(st.algo) && st.stage_scales.output <= 0.F) {
              st.stage_scales.output = scales[i + 1];
            }
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            if (st.output_scale <= 0.F) st.output_scale = scales[i + 1];
          }
        },
        nodes_[i].op);
  }
}

std::vector<std::int64_t> Int8Pipeline::classify(const Tensor& input) const {
  const Tensor logits = run(input);
  const std::int64_t n = logits.size(0), classes = logits.numel() / n;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (logits.at(i * classes + c) > logits.at(i * classes + best)) best = c;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

// ---- compilers --------------------------------------------------------------

namespace {

const quant::QuantSpec kInt8{8};

float observer_scale_checked(const quant::RangeObserver& obs, const std::string& where) {
  if (!obs.initialized()) {
    throw std::invalid_argument("compile: observer never calibrated at " + where +
                                " — train or run a calibration pass first");
  }
  return obs.scale(kInt8);
}

ConvStage compile_conv(nn::Module& layer, const std::string& name, bool relu_after) {
  ConvStage st;
  st.relu_after = relu_after;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const auto& o = conv->options();
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.groups = o.groups;
    st.input_scale = observer_scale_checked(conv->input_observer(), name);
    st.weights_q = backend::quantize_s8(conv->weight().value());
    if (conv->bias().defined()) st.bias = conv->bias().value();
    return st;
  }
  if (auto* wa = dynamic_cast<core::WinogradAwareConv2d*>(&layer)) {
    const auto& o = wa->options();
    st.algo = o.algo;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.groups = o.groups;
    // A winograd_prune mask rides along and is baked into the U cache (zeroed
    // taps + skip flags) when the stage prepares.
    if (wa->winograd_mask().numel() > 0) st.sparse_mask = wa->winograd_mask();
    st.input_scale = observer_scale_checked(wa->input_observer(), name);
    // Training transforms the fake-quantized weights (U = Q(G ŵ Gᵀ));
    // replicate that here or the deployed U drifts from the trained one.
    Tensor w = wa->weight().value();
    quant::fake_quant_(w, quant::scale_for(w.abs_max(), kInt8), kInt8);
    st.weights_f = std::move(w);
    // The layer's live transforms — learned ("flex") ones carry over as-is,
    // which is exactly how a dense learned transform reaches deployment.
    st.transforms.m = wa->output_tile();
    st.transforms.r = static_cast<int>(o.kernel);
    st.transforms.tile = wa->input_tile();
    st.transforms.g_mat = wa->g_mat().value();
    st.transforms.bt_mat = wa->bt_mat().value();
    st.transforms.at_mat = wa->at_mat().value();
    auto& stg = wa->stages();
    if (stg.per_tap()) {
      // Per-tap QAT: freeze each transform-domain stage to the expanded scale
      // vector its tap observer tracked — exactly the grid training quantized
      // against. The scalar fields carry tap 0 as a representative so every
      // "> 0 == frozen" predicate in deploy keeps working unchanged.
      const auto vector_checked = [](quant::TapRangeObserver& obs, const std::string& w) {
        if (!obs.configured() || !obs.initialized()) {
          throw std::invalid_argument("compile: per-tap observer never calibrated at " + w +
                                      " — train or run a calibration pass first");
        }
        return obs.scale_vector(kInt8).scales;
      };
      st.stage_scales.weights_transformed_taps = vector_checked(stg.u_taps, name + ".u");
      st.stage_scales.input_transformed_taps = vector_checked(stg.v_taps, name + ".v");
      st.stage_scales.hadamard_taps = vector_checked(stg.m_taps, name + ".m");
      st.stage_scales.weights_transformed = st.stage_scales.weights_transformed_taps.front();
      st.stage_scales.input_transformed = st.stage_scales.input_transformed_taps.front();
      st.stage_scales.hadamard = st.stage_scales.hadamard_taps.front();
    } else {
      st.stage_scales.weights_transformed = stg.u.scale(kInt8);
      st.stage_scales.input_transformed = observer_scale_checked(stg.v, name + ".v");
      st.stage_scales.hadamard = observer_scale_checked(stg.m, name + ".m");
    }
    st.stage_scales.output = observer_scale_checked(stg.y, name + ".y");
    st.output_scale = st.stage_scales.output;
    if (wa->options().bias) st.bias = wa->bias().value();
    return st;
  }
  throw std::invalid_argument("compile: unsupported conv layer type at " + name);
}

}  // namespace

Int8Pipeline compile_lenet(models::LeNet5& model) {
  model.set_training(false);
  Int8Pipeline pipe;

  // LeNet's forward order: conv1-relu-pool1, conv2-relu-pool2, flatten,
  // fc1-relu, fc2-relu, fc3. Children are registered in that order; pull
  // them out by name so a registration reshuffle fails loudly here.
  nn::Module* conv1 = nullptr;
  nn::Module* conv2 = nullptr;
  nn::MaxPool2d* pool1 = nullptr;
  nn::MaxPool2d* pool2 = nullptr;
  nn::Linear* fc1 = nullptr;
  nn::Linear* fc2 = nullptr;
  nn::Linear* fc3 = nullptr;
  for (const auto& [name, child] : model.named_children()) {
    if (name == "conv1") conv1 = child.get();
    if (name == "conv2") conv2 = child.get();
    if (name == "pool1") pool1 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "pool2") pool2 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "fc1") fc1 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc2") fc2 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc3") fc3 = dynamic_cast<nn::Linear*>(child.get());
  }
  if (!conv1 || !conv2 || !pool1 || !pool2 || !fc1 || !fc2 || !fc3) {
    throw std::invalid_argument("compile_lenet: model does not look like LeNet-5");
  }

  auto linear_stage = [](nn::Linear& fc, const std::string& name, bool relu) {
    LinearStage st;
    st.relu_after = relu;
    st.input_scale = observer_scale_checked(fc.input_observer(), name);
    st.weights_q = backend::quantize_s8(fc.weight().value());
    if (fc.bias().defined()) st.bias = fc.bias().value();
    return st;
  };

  ConvStage c1 = compile_conv(*conv1, "conv1", /*relu_after=*/true);
  ConvStage c2 = compile_conv(*conv2, "conv2", /*relu_after=*/true);
  LinearStage l1 = linear_stage(*fc1, "fc1", true);
  LinearStage l2 = linear_stage(*fc2, "fc2", true);
  LinearStage l3 = linear_stage(*fc3, "fc3", false);

  // Chain output scales to the consumer's expected input scale so the
  // inter-stage rescale is the identity (what a real compiler emits).
  c1.output_scale = c2.input_scale;
  c2.output_scale = l1.input_scale;
  l1.output_scale = l2.input_scale;
  l2.output_scale = l3.input_scale;
  // l3 keeps output_scale < 0: logits requantize from their own range.

  auto labelled = [](const char* label) {
    StageIO io;
    io.label = label;
    return io;
  };
  pipe.push(std::move(c1), labelled("conv1"));
  pipe.push(PoolStage{pool1->kernel(), pool1->stride()}, labelled("pool1"));
  pipe.push(std::move(c2), labelled("conv2"));
  pipe.push(PoolStage{pool2->kernel(), pool2->stride()}, labelled("pool2"));
  pipe.push(FlattenStage{}, labelled("flatten"));
  pipe.push(std::move(l1), labelled("fc1"));
  pipe.push(std::move(l2), labelled("fc2"));
  pipe.push(std::move(l3), labelled("fc3"));
  return pipe;
}

// ---- compile_resnet18 -------------------------------------------------------

namespace {

quant::RangeObserver& conv_input_observer(nn::Module& m, const std::string& name) {
  if (auto* c = dynamic_cast<nn::Conv2d*>(&m)) return c->input_observer();
  if (auto* w = dynamic_cast<core::WinogradAwareConv2d*>(&m)) return w->input_observer();
  throw std::invalid_argument("compile: unsupported conv layer type at " + name);
}

/// Per-channel batch-norm coefficients in real units: A = gamma * inv_std,
/// B = beta - A * mean.
void bn_coefficients(nn::BatchNorm2d& bn, Tensor* a, Tensor* b) {
  const Tensor& var = bn.running_var();
  const Tensor& mean = bn.running_mean();
  const Tensor gamma = bn.gamma().value();
  const Tensor beta = bn.beta().value();
  const std::int64_t c = var.numel();
  *a = Tensor(Shape{c});
  *b = Tensor(Shape{c});
  for (std::int64_t k = 0; k < c; ++k) {
    const float inv_std = 1.F / std::sqrt(var.at(k) + bn.eps());
    a->at(k) = gamma.at(k) * inv_std;
    b->at(k) = beta.at(k) - a->at(k) * mean.at(k);
  }
}

/// GEMM convolutions fold batch-norm into the quantized weights — the
/// standard deployment order (src/backend/bn_fold.hpp), valid because their
/// output scale is free to be anything the compiler chains.
ConvStage compile_folded_conv(nn::Conv2d& conv, nn::BatchNorm2d& bn, const std::string& name,
                              bool relu_after, float out_scale) {
  ConvStage st;
  st.relu_after = relu_after;
  const auto& o = conv.options();
  st.algo = o.algo;
  st.in_channels = o.in_channels;
  st.out_channels = o.out_channels;
  st.kernel = o.kernel;
  st.pad = o.pad;
  st.groups = o.groups;
  st.input_scale = observer_scale_checked(conv.input_observer(), name);
  const backend::FoldedConv folded = backend::fold_batchnorm(
      conv.weight().value(), conv.bias().defined() ? conv.bias().value() : Tensor(),
      bn.gamma().value(), bn.beta().value(), bn.running_mean(), bn.running_var(), bn.eps());
  st.weights_q = backend::quantize_s8(folded.weights);
  st.bias = folded.bias;
  st.output_scale = out_scale;
  return st;
}

BnStage make_bn_stage(nn::BatchNorm2d& bn, float in_scale, float out_scale, bool relu) {
  BnStage st;
  st.input_scale = in_scale;
  st.output_scale = out_scale;
  st.relu_after = relu;
  bn_coefficients(bn, &st.scale, &st.bias);
  return st;
}

/// Emit conv [+ batch-norm] onto the pipeline. GEMM convs fold the norm into
/// their weights; Winograd-aware convs must keep their frozen Qx scales (the
/// Hadamard/output observers saw the *unfolded* weights), so they emit the
/// conv at its trained y-scale followed by an integer per-channel affine.
void emit_conv_bn(Int8Pipeline& pipe, nn::Module& conv, nn::BatchNorm2d& bn,
                  const std::string& name, bool relu, float out_scale,
                  const std::string& input_slot) {
  if (auto* gemm = dynamic_cast<nn::Conv2d*>(&conv)) {
    StageIO io;
    io.input = input_slot;
    io.label = name + "+bn";
    pipe.push(compile_folded_conv(*gemm, bn, name, relu, out_scale), std::move(io));
    return;
  }
  ConvStage st = compile_conv(conv, name, /*relu_after=*/false);
  const float y_scale = st.stage_scales.output;
  StageIO cio;
  cio.input = input_slot;
  cio.label = name;
  pipe.push(std::move(st), std::move(cio));
  StageIO bio;
  bio.label = name + ".bn";
  pipe.push(make_bn_stage(bn, y_scale, out_scale, relu), std::move(bio));
}

}  // namespace

Int8Pipeline compile_resnet18(models::ResNet18& model) {
  model.set_training(false);
  Int8Pipeline pipe;
  const auto& blocks = model.blocks();
  if (blocks.empty()) throw std::invalid_argument("compile_resnet18: model has no blocks");

  // Stem: conv_in + bn_in fold, ReLU, published as the first block's input.
  const std::string stem_name = "conv_in";
  ConvStage stem = compile_folded_conv(
      model.conv_in(), model.bn_in(), stem_name, /*relu_after=*/true,
      observer_scale_checked(conv_input_observer(blocks[0]->conv1(), "stage1.block0.conv1"),
                             "stage1.block0.conv1"));
  std::string x_slot = "stem.out";
  float x_scale = stem.output_scale;
  {
    StageIO io;
    io.output = x_slot;
    io.label = stem_name + "+bn";
    pipe.push(std::move(stem), std::move(io));
  }

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    models::BasicBlock& b = *blocks[i];
    const std::string name =
        "stage" + std::to_string(i / 2 + 1) + ".block" + std::to_string(i % 2);
    const bool last = i + 1 == blocks.size();
    const float out_scale = observer_scale_checked(b.output_observer(), name + ".out");
    const float main_scale = observer_scale_checked(b.main_branch_observer(), name + ".main");

    // ---- skip branch first, so the main path can chain implicitly ----
    std::string skip_slot = x_slot;  // identity skip reads the block input
    float skip_scale = x_scale;
    if (b.shortcut() != nullptr) {
      skip_slot = name + ".skip";
      skip_scale = observer_scale_checked(b.skip_branch_observer(), name + ".skip");
      std::string conv_input = x_slot;
      if (b.downsample()) {
        StageIO io;
        io.input = x_slot;
        io.label = name + ".pool_short";
        pipe.push(PoolStage{2, 2}, std::move(io));
        conv_input.clear();  // shortcut conv chains off the pooled skip
      }
      StageIO io;
      io.input = conv_input;
      io.output = skip_slot;
      io.label = name + ".shortcut+bn";
      pipe.push(
          compile_folded_conv(*b.shortcut(), *b.bn_short(), name + ".shortcut",
                              /*relu_after=*/false, skip_scale),
          std::move(io));
    } else if (b.downsample()) {
      // Identity skip across a downsample (impossible in the stock topology,
      // where every downsample changes channels, but cheap to support).
      skip_slot = name + ".skip";
      StageIO io;
      io.input = x_slot;
      io.output = skip_slot;
      io.label = name + ".pool_short";
      pipe.push(PoolStage{2, 2}, std::move(io));
    }

    // ---- main path: [pool] conv1+bn1+relu, conv2+bn2 ----
    std::string main_input = x_slot;
    if (b.downsample()) {
      StageIO io;
      io.input = x_slot;
      io.label = name + ".pool";
      pipe.push(PoolStage{2, 2}, std::move(io));
      main_input.clear();
    }
    const float conv2_in =
        observer_scale_checked(conv_input_observer(b.conv2(), name + ".conv2"), name + ".conv2");
    emit_conv_bn(pipe, b.conv1(), b.bn1(), name + ".conv1", /*relu=*/true, conv2_in, main_input);
    emit_conv_bn(pipe, b.conv2(), b.bn2(), name + ".conv2", /*relu=*/false, main_scale, "");

    // ---- level-aligned residual join ----
    AddStage add;
    add.lhs_scale = main_scale;
    add.rhs_scale = skip_scale;
    add.output_scale = out_scale;
    add.relu_after = true;
    StageIO io;
    io.input2 = skip_slot;
    if (!last) io.output = name + ".out";
    io.label = name + ".add";
    pipe.push(std::move(add), std::move(io));

    x_slot = name + ".out";
    x_scale = out_scale;
  }

  {
    StageIO io;
    io.label = "gap";
    pipe.push(AvgPoolStage{}, std::move(io));
  }
  LinearStage fc;
  fc.input_scale = observer_scale_checked(model.fc().input_observer(), "fc");
  fc.weights_q = backend::quantize_s8(model.fc().weight().value());
  if (model.fc().bias().defined()) fc.bias = model.fc().bias().value();
  // fc keeps output_scale < 0: logits requantize from their own range.
  {
    StageIO io;
    io.label = "fc";
    pipe.push(std::move(fc), std::move(io));
  }
  return pipe;
}

// ---- compile_squeezenet -----------------------------------------------------

Int8Pipeline compile_squeezenet(models::SqueezeNet& model) {
  model.set_training(false);
  Int8Pipeline pipe;
  const auto& fires = model.fires();
  if (fires.empty()) throw std::invalid_argument("compile_squeezenet: model has no fire modules");

  // Stem: conv_in + bn_in fold, ReLU, chains straight into fire0's squeeze.
  {
    ConvStage stem = compile_folded_conv(
        model.conv_in(), model.bn_in(), "conv_in", /*relu_after=*/true,
        observer_scale_checked(fires[0]->squeeze().input_observer(), "fire0.squeeze"));
    StageIO io;
    io.label = "conv_in+bn";
    pipe.push(std::move(stem), std::move(io));
  }

  const auto& pool_after = model.pool_after();
  for (std::size_t i = 0; i < fires.size(); ++i) {
    models::Fire& f = *fires[i];
    const std::string name = "fire" + std::to_string(i);

    // Squeeze 1x1 + ReLU publishes the module's fan-out slot: both expand
    // branches read it (the second reader rescales onto its own input scale
    // if the two observers disagree).
    {
      ConvStage sq = compile_conv(f.squeeze(), name + ".squeeze", /*relu_after=*/true);
      sq.output_scale = observer_scale_checked(f.expand1().input_observer(), name + ".expand1");
      StageIO io;
      io.output = name + ".s";
      io.label = name + ".squeeze";
      pipe.push(std::move(sq), std::move(io));
    }

    const float e1_scale = observer_scale_checked(f.expand1_observer(), name + ".e1");
    {
      ConvStage e1 = compile_conv(f.expand1(), name + ".expand1", /*relu_after=*/false);
      e1.output_scale = e1_scale;
      StageIO io;
      io.input = name + ".s";
      io.output = name + ".e1";
      io.label = name + ".expand1";
      pipe.push(std::move(e1), std::move(io));
    }

    ConvStage e3 = compile_conv(f.expand3(), name + ".expand3", /*relu_after=*/false);
    if (!nn::is_winograd(e3.algo)) {
      // The GEMM branch has a free output scale; Winograd keeps its frozen y.
      e3.output_scale = observer_scale_checked(f.expand3_observer(), name + ".e3");
    }
    const float e3_scale = e3.output_scale;
    {
      StageIO io;
      io.input = name + ".s";
      io.output = name + ".e3";
      io.label = name + ".expand3";
      pipe.push(std::move(e3), std::move(io));
    }

    // Level-aligned channel concat at the concat observer's scale, then the
    // module batch-norm as an integer per-channel affine with fused ReLU.
    const float cat_scale = observer_scale_checked(f.concat_observer(), name + ".concat");
    {
      ConcatStage cat;
      cat.lhs_scale = e1_scale;
      cat.rhs_scale = e3_scale;
      cat.output_scale = cat_scale;
      cat.relu_after = false;  // the bn stage fuses the module's ReLU
      StageIO io;
      io.input = name + ".e1";
      io.input2 = name + ".e3";
      io.label = name + ".concat";
      pipe.push(std::move(cat), std::move(io));
    }
    {
      const float out_scale = observer_scale_checked(f.output_observer(), name + ".out");
      StageIO io;
      io.label = name + ".bn";
      pipe.push(make_bn_stage(f.bn(), cat_scale, out_scale, /*relu=*/true), std::move(io));
    }

    if (std::find(pool_after.begin(), pool_after.end(), static_cast<int>(i)) !=
        pool_after.end()) {
      StageIO io;
      io.label = name + ".pool";
      pipe.push(PoolStage{model.pool().kernel(), model.pool().stride()}, std::move(io));
    }
  }

  {
    StageIO io;
    io.label = "gap";
    pipe.push(AvgPoolStage{}, std::move(io));
  }
  LinearStage fc;
  fc.input_scale = observer_scale_checked(model.fc().input_observer(), "fc");
  fc.weights_q = backend::quantize_s8(model.fc().weight().value());
  if (model.fc().bias().defined()) fc.bias = model.fc().bias().value();
  // fc keeps output_scale < 0: logits requantize from their own range.
  {
    StageIO io;
    io.label = "fc";
    pipe.push(std::move(fc), std::move(io));
  }
  return pipe;
}

// ---- compile_resnext --------------------------------------------------------

Int8Pipeline compile_resnext(models::ResNeXt20& model) {
  model.set_training(false);
  Int8Pipeline pipe;
  const auto& blocks = model.blocks();
  if (blocks.empty()) throw std::invalid_argument("compile_resnext: model has no blocks");

  // Stem: conv_in + bn_in fold, ReLU, published as the first block's input.
  ConvStage stem = compile_folded_conv(
      model.conv_in(), model.bn_in(), "conv_in", /*relu_after=*/true,
      observer_scale_checked(blocks[0]->reduce().input_observer(), "stage1.block0.reduce"));
  std::string x_slot = "stem.out";
  float x_scale = stem.output_scale;
  {
    StageIO io;
    io.output = x_slot;
    io.label = "conv_in+bn";
    pipe.push(std::move(stem), std::move(io));
  }

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    models::ResNeXtBlock& b = *blocks[i];
    const std::string name =
        "stage" + std::to_string(i / 2 + 1) + ".block" + std::to_string(i % 2);
    const bool last = i + 1 == blocks.size();
    const float out_scale = observer_scale_checked(b.output_observer(), name + ".out");
    const float main_scale = observer_scale_checked(b.main_branch_observer(), name + ".main");

    // ---- skip branch first, so the main path can chain implicitly ----
    std::string skip_slot = x_slot;  // identity skip reads the block input
    float skip_scale = x_scale;
    if (b.shortcut() != nullptr) {
      skip_slot = name + ".skip";
      skip_scale = observer_scale_checked(b.skip_branch_observer(), name + ".skip");
      std::string conv_input = x_slot;
      if (b.downsample()) {
        StageIO io;
        io.input = x_slot;
        io.label = name + ".pool_short";
        pipe.push(PoolStage{2, 2}, std::move(io));
        conv_input.clear();  // shortcut conv chains off the pooled skip
      }
      StageIO io;
      io.input = conv_input;
      io.output = skip_slot;
      io.label = name + ".shortcut+bn";
      pipe.push(
          compile_folded_conv(*b.shortcut(), *b.bn_short(), name + ".shortcut",
                              /*relu_after=*/false, skip_scale),
          std::move(io));
    } else if (b.downsample()) {
      skip_slot = name + ".skip";
      StageIO io;
      io.input = x_slot;
      io.output = skip_slot;
      io.label = name + ".pool_short";
      pipe.push(PoolStage{2, 2}, std::move(io));
    }

    // ---- main path: [pool] reduce+bn1+relu, grouped conv3+bn2+relu,
    // expand+bn3 ----
    std::string main_input = x_slot;
    if (b.downsample()) {
      StageIO io;
      io.input = x_slot;
      io.label = name + ".pool";
      pipe.push(PoolStage{2, 2}, std::move(io));
      main_input.clear();
    }
    const float conv3_in =
        observer_scale_checked(conv_input_observer(b.conv3(), name + ".conv3"), name + ".conv3");
    {
      StageIO io;
      io.input = main_input;
      io.label = name + ".reduce+bn";
      pipe.push(compile_folded_conv(b.reduce(), b.bn1(), name + ".reduce",
                                    /*relu_after=*/true, conv3_in),
                std::move(io));
    }
    const float expand_in = observer_scale_checked(b.expand().input_observer(), name + ".expand");
    emit_conv_bn(pipe, b.conv3(), b.bn2(), name + ".conv3", /*relu=*/true, expand_in, "");
    {
      StageIO io;
      io.label = name + ".expand+bn";
      pipe.push(compile_folded_conv(b.expand(), b.bn3(), name + ".expand",
                                    /*relu_after=*/false, main_scale),
                std::move(io));
    }

    // ---- level-aligned residual join ----
    AddStage add;
    add.lhs_scale = main_scale;
    add.rhs_scale = skip_scale;
    add.output_scale = out_scale;
    add.relu_after = true;
    StageIO io;
    io.input2 = skip_slot;
    if (!last) io.output = name + ".out";
    io.label = name + ".add";
    pipe.push(std::move(add), std::move(io));

    x_slot = name + ".out";
    x_scale = out_scale;
  }

  {
    StageIO io;
    io.label = "gap";
    pipe.push(AvgPoolStage{}, std::move(io));
  }
  LinearStage fc;
  fc.input_scale = observer_scale_checked(model.fc().input_observer(), "fc");
  fc.weights_q = backend::quantize_s8(model.fc().weight().value());
  if (model.fc().bias().defined()) fc.bias = model.fc().bias().value();
  // fc keeps output_scale < 0: logits requantize from their own range.
  {
    StageIO io;
    io.label = "fc";
    pipe.push(std::move(fc), std::move(io));
  }
  return pipe;
}

}  // namespace wa::deploy
