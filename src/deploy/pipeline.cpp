#include "deploy/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "core/wa_conv2d.hpp"

namespace wa::deploy {

using backend::QTensor;

namespace {

/// Remap int8 levels from one scale to another (identity when they match).
QTensor rescale_s8(QTensor x, float target_scale) {
  if (target_scale <= 0.F || std::fabs(x.scale - target_scale) < 1e-12F) return x;
  const float ratio = x.scale / target_scale;
  for (auto& v : x.data) {
    const float q = std::nearbyint(static_cast<float>(v) * ratio);
    v = static_cast<std::int8_t>(std::min(127.F, std::max(-127.F, q)));
  }
  x.scale = target_scale;
  return x;
}

backend::ConvGeometry conv_geometry(const ConvStage& st, const Shape& in_shape) {
  backend::ConvGeometry g;
  g.batch = in_shape[0];
  g.in_channels = st.in_channels;
  g.height = in_shape[2];
  g.width = in_shape[3];
  g.out_channels = st.out_channels;
  g.kernel = st.kernel;
  g.pad = st.pad;
  return g;
}

QTensor run_conv(const ConvStage& st, QTensor x) {
  x = rescale_s8(std::move(x), st.input_scale);
  const backend::ConvGeometry g = conv_geometry(st, x.shape);
  QTensor y;
  if (nn::is_winograd(st.algo)) {
    y = backend::winograd_conv_s8_prepared(x, st.wino_cache, g, st.transforms, st.stage_scales,
                                           st.bias.empty() ? nullptr : &st.bias);
  } else {
    y = backend::im2row_conv_s8_prepared(x, st.im2row_cache, g, st.output_scale,
                                         st.bias.empty() ? nullptr : &st.bias);
  }
  return st.relu_after ? relu_s8(std::move(y)) : y;
}

QTensor run_linear(const LinearStage& st, QTensor x) {
  x = rescale_s8(std::move(x), st.input_scale);
  QTensor y = linear_s8(x, st.weights_q, st.bias, st.output_scale);
  return st.relu_after ? relu_s8(std::move(y)) : y;
}

}  // namespace

void ConvStage::prepare() {
  if (nn::is_winograd(algo)) {
    wino_cache =
        backend::prepare_winograd_weights_s8(weights_f, transforms, stage_scales.weights_transformed);
    // The derived scale is now frozen: per-forward scale rediscovery would
    // otherwise disagree with the cached levels.
    stage_scales.weights_transformed = wino_cache.scale;
  } else {
    im2row_cache = backend::prepare_im2row_weights_s8(weights_q);
  }
}

void Int8Pipeline::push(Stage s) {
  // Finalise weight caches at load so no forward ever pays for them.
  if (auto* conv = std::get_if<ConvStage>(&s)) {
    if (!conv->prepared()) conv->prepare();
  }
  stages_.push_back(std::move(s));
}

Tensor Int8Pipeline::run(const Tensor& input) const {
  if (stages_.empty()) throw std::invalid_argument("Int8Pipeline::run: empty pipeline");
  const auto* first = std::get_if<ConvStage>(&stages_.front());
  if (first == nullptr) {
    throw std::invalid_argument("Int8Pipeline::run: pipeline must start with a convolution");
  }
  QTensor cur = backend::quantize_s8(input, first->input_scale);
  for (const Stage& stage : stages_) {
    cur = std::visit(
        [&cur](const auto& st) -> QTensor {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            return run_conv(st, std::move(cur));
          } else if constexpr (std::is_same_v<T, PoolStage>) {
            return max_pool_s8(cur, st.kernel, st.stride);
          } else if constexpr (std::is_same_v<T, FlattenStage>) {
            return flatten_s8(std::move(cur));
          } else {
            return run_linear(st, std::move(cur));
          }
        },
        stage);
  }
  return backend::dequantize(cur);
}

Tensor Int8Pipeline::run_batched(const Tensor& input, std::int64_t micro_batch) const {
  if (input.dim() < 1) throw std::invalid_argument("Int8Pipeline::run_batched: scalar input");
  const std::int64_t n = input.size(0);
  if (micro_batch <= 0 || micro_batch >= n) return run(input);
  std::vector<Tensor> chunks;
  chunks.reserve(static_cast<std::size_t>((n + micro_batch - 1) / micro_batch));
  for (std::int64_t b0 = 0; b0 < n; b0 += micro_batch) {
    chunks.push_back(run(input.slice0(b0, std::min(n, b0 + micro_batch))));
  }
  return Tensor::concat(chunks, 0);
}

std::vector<std::int64_t> Int8Pipeline::classify(const Tensor& input) const {
  const Tensor logits = run(input);
  const std::int64_t n = logits.size(0), classes = logits.numel() / n;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (logits.at(i * classes + c) > logits.at(i * classes + best)) best = c;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

namespace {

const quant::QuantSpec kInt8{8};

float observer_scale_checked(const quant::RangeObserver& obs, const std::string& where) {
  if (!obs.initialized()) {
    throw std::invalid_argument("compile_lenet: observer never calibrated at " + where +
                                " — train or run a calibration pass first");
  }
  return obs.scale(kInt8);
}

ConvStage compile_conv(nn::Module& layer, const std::string& name, bool relu_after) {
  ConvStage st;
  st.relu_after = relu_after;
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const auto& o = conv->options();
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.input_scale = observer_scale_checked(conv->input_observer(), name);
    st.weights_q = backend::quantize_s8(conv->weight().value());
    if (conv->bias().defined()) st.bias = conv->bias().value();
    return st;
  }
  if (auto* wa = dynamic_cast<core::WinogradAwareConv2d*>(&layer)) {
    const auto& o = wa->options();
    st.algo = o.algo;
    st.in_channels = o.in_channels;
    st.out_channels = o.out_channels;
    st.kernel = o.kernel;
    st.pad = o.pad;
    st.input_scale = observer_scale_checked(wa->input_observer(), name);
    // Training transforms the fake-quantized weights (U = Q(G ŵ Gᵀ));
    // replicate that here or the deployed U drifts from the trained one.
    Tensor w = wa->weight().value();
    quant::fake_quant_(w, quant::scale_for(w.abs_max(), kInt8), kInt8);
    st.weights_f = std::move(w);
    // The layer's live transforms — learned ("flex") ones carry over as-is,
    // which is exactly how a dense learned transform reaches deployment.
    st.transforms.m = wa->output_tile();
    st.transforms.r = static_cast<int>(o.kernel);
    st.transforms.tile = wa->input_tile();
    st.transforms.g_mat = wa->g_mat().value();
    st.transforms.bt_mat = wa->bt_mat().value();
    st.transforms.at_mat = wa->at_mat().value();
    auto& stg = wa->stages();
    st.stage_scales.weights_transformed = stg.u.scale(kInt8);
    st.stage_scales.input_transformed = observer_scale_checked(stg.v, name + ".v");
    st.stage_scales.hadamard = observer_scale_checked(stg.m, name + ".m");
    st.stage_scales.output = observer_scale_checked(stg.y, name + ".y");
    if (wa->options().bias) st.bias = wa->bias().value();
    return st;
  }
  throw std::invalid_argument("compile_lenet: unsupported conv layer type at " + name);
}

}  // namespace

Int8Pipeline compile_lenet(models::LeNet5& model) {
  model.set_training(false);
  Int8Pipeline pipe;

  // LeNet's forward order: conv1-relu-pool1, conv2-relu-pool2, flatten,
  // fc1-relu, fc2-relu, fc3. Children are registered in that order; pull
  // them out by name so a registration reshuffle fails loudly here.
  nn::Module* conv1 = nullptr;
  nn::Module* conv2 = nullptr;
  nn::MaxPool2d* pool1 = nullptr;
  nn::MaxPool2d* pool2 = nullptr;
  nn::Linear* fc1 = nullptr;
  nn::Linear* fc2 = nullptr;
  nn::Linear* fc3 = nullptr;
  for (const auto& [name, child] : model.named_children()) {
    if (name == "conv1") conv1 = child.get();
    if (name == "conv2") conv2 = child.get();
    if (name == "pool1") pool1 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "pool2") pool2 = dynamic_cast<nn::MaxPool2d*>(child.get());
    if (name == "fc1") fc1 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc2") fc2 = dynamic_cast<nn::Linear*>(child.get());
    if (name == "fc3") fc3 = dynamic_cast<nn::Linear*>(child.get());
  }
  if (!conv1 || !conv2 || !pool1 || !pool2 || !fc1 || !fc2 || !fc3) {
    throw std::invalid_argument("compile_lenet: model does not look like LeNet-5");
  }

  auto linear_stage = [](nn::Linear& fc, const std::string& name, bool relu) {
    LinearStage st;
    st.relu_after = relu;
    st.input_scale = observer_scale_checked(fc.input_observer(), name);
    st.weights_q = backend::quantize_s8(fc.weight().value());
    if (fc.bias().defined()) st.bias = fc.bias().value();
    return st;
  };

  ConvStage c1 = compile_conv(*conv1, "conv1", /*relu_after=*/true);
  ConvStage c2 = compile_conv(*conv2, "conv2", /*relu_after=*/true);
  LinearStage l1 = linear_stage(*fc1, "fc1", true);
  LinearStage l2 = linear_stage(*fc2, "fc2", true);
  LinearStage l3 = linear_stage(*fc3, "fc3", false);

  // Chain output scales to the consumer's expected input scale so the
  // inter-stage rescale is the identity (what a real compiler emits).
  c1.output_scale = c2.input_scale;
  c2.output_scale = l1.input_scale;
  l1.output_scale = l2.input_scale;
  l2.output_scale = l3.input_scale;
  // l3 keeps output_scale < 0: logits requantize from their own range.

  pipe.push(std::move(c1));
  pipe.push(PoolStage{pool1->kernel(), pool1->stride()});
  pipe.push(std::move(c2));
  pipe.push(PoolStage{pool2->kernel(), pool2->stride()});
  pipe.push(FlattenStage{});
  pipe.push(std::move(l1));
  pipe.push(std::move(l2));
  pipe.push(std::move(l3));
  return pipe;
}

}  // namespace wa::deploy
