// Dead-stage / dead-slot elimination: drop every stage whose result cannot
// reach the pipeline output — a published slot nobody reads, and
// (transitively) everything that only fed it. The executor rejects such
// graphs at run time ("dead dataflow"); this pass instead deletes the dead
// work so a load-time mis-wiring costs nothing per forward, then
// re-validates the surviving wiring by re-pushing it.
#include "deploy/passes/passes.hpp"

namespace wa::deploy::passes {

namespace {

using Node = Int8Pipeline::Node;

class DcePass final : public Pass {
 public:
  std::string name() const override { return "dead-stage-elimination"; }

  PassResult run(Int8Pipeline& pipe, const OptimizeOptions&) override {
    PassResult r;
    r.name = name();
    if (pipe.size() == 0) {
      r.detail = "empty pipeline";
      return r;
    }
    // Tolerate dead published slots here — finding them is the point.
    const Int8Pipeline::Wiring w = pipe.resolve_wiring(/*reject_dead=*/false);
    const std::size_t n = pipe.size();

    // Mark-sweep backwards from the final stage (its value IS the result).
    std::vector<bool> live(n, false);
    std::vector<std::size_t> work{n - 1};
    live[n - 1] = true;
    while (!work.empty()) {
      const std::size_t i = work.back();
      work.pop_back();
      for (const std::int32_t v : {w.in1[i], w.in2[i]}) {
        // Value v > 0 is produced by stage v-1; value 0 is the input.
        if (v > 0 && !live[static_cast<std::size_t>(v - 1)]) {
          live[static_cast<std::size_t>(v - 1)] = true;
          work.push_back(static_cast<std::size_t>(v - 1));
        }
      }
    }

    std::size_t removed = 0;
    for (const bool l : live) removed += l ? 0 : 1;
    if (removed > 0) {
      std::vector<Node> nodes = pipe.take_nodes();
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i]) continue;
        pipe.push(std::move(nodes[i].op), std::move(nodes[i].io), std::move(nodes[i].epilogue));
      }
    }
    r.changed = removed > 0;
    r.count = removed;
    r.detail = std::to_string(removed) + " dead stage(s) eliminated";
    return r;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dce_pass() { return std::make_unique<DcePass>(); }

}  // namespace wa::deploy::passes
