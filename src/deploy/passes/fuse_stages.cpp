// Fusion pass: fold standalone ReluStage / RequantStage / BnStage nodes
// into the producing conv / linear / add (or batch-norm) stage as in-place
// epilogue ops, so the intermediate int8 tensor never round-trips through
// an activation slot.
//
// Fusion is only performed when it is provably bit-preserving:
//   - the folded stage must consume the producer's output directly — either
//     plain chaining, or a published slot with exactly one reader that is
//     the very next stage (the slot disappears with the fold);
//   - a folded BnStage / RequantStage must expect EXACTLY the producer's
//     frozen output scale, so the inter-stage rescale it replaces was the
//     identity (ReluStage never rescales and fuses unconditionally);
//   - the epilogue body is the same element kernel the standalone stage
//     runs (relu_s8 / requant_s8_ / channel_affine_s8_), applied in the
//     same order.
// Producers with dynamic (<= 0) output scales are left alone.
#include <cmath>

#include "deploy/passes/pass_internal.hpp"
#include "deploy/passes/passes.hpp"

namespace wa::deploy::passes {

namespace {

using Node = Int8Pipeline::Node;

bool fusable_producer(const Node& n) {
  return std::holds_alternative<ConvStage>(n.op) || std::holds_alternative<LinearStage>(n.op) ||
         std::holds_alternative<AddStage>(n.op) || std::holds_alternative<ConcatStage>(n.op) ||
         std::holds_alternative<BnStage>(n.op) || std::holds_alternative<RequantStage>(n.op);
}

/// Scales match exactly — the rescale the fold removes was the identity.
bool identity_scale(float producer, float expected) {
  return producer > 0.F && expected > 0.F && std::fabs(producer - expected) < 1e-12F;
}

/// How many stages read slot `name`.
std::size_t slot_readers(const std::vector<Node>& nodes, const std::string& name) {
  std::size_t readers = 0;
  for (const Node& n : nodes) {
    if (n.io.input == name) ++readers;
    if (n.io.input2 == name) ++readers;
  }
  return readers;
}

std::string merge_label(const Node& producer, const Node& consumer, std::size_t consumer_index) {
  const std::string lhs =
      producer.io.label.empty() ? "(unlabeled)" : producer.io.label;
  const std::string rhs =
      consumer.io.label.empty() ? "stage" + std::to_string(consumer_index) : consumer.io.label;
  return lhs + "+" + rhs;
}

class FuseStagesPass final : public Pass {
 public:
  std::string name() const override { return "fuse-stages"; }

  PassResult run(Int8Pipeline& pipe, const OptimizeOptions&) override {
    std::vector<Node> nodes = pipe.take_nodes();
    std::size_t fused = 0;

    for (std::size_t i = 1; i < nodes.size();) {
      Node& consumer = nodes[i];
      Node& producer = nodes[i - 1];
      const bool foldable_kind = std::holds_alternative<ReluStage>(consumer.op) ||
                                 std::holds_alternative<RequantStage>(consumer.op) ||
                                 std::holds_alternative<BnStage>(consumer.op);
      if (!foldable_kind || !fusable_producer(producer)) {
        ++i;
        continue;
      }
      // Adjacency: the consumer must read exactly the producer's output.
      bool chained = producer.io.output.empty() && consumer.io.input.empty();
      bool via_slot = !producer.io.output.empty() && consumer.io.input == producer.io.output &&
                      slot_readers(nodes, producer.io.output) == 1;
      if (!chained && !via_slot) {
        ++i;
        continue;
      }
      // Scale precondition (Relu is scale-free; Bn/Requant must replace an
      // identity rescale).
      const float produced = internal::node_result_scale(producer, /*in_scale=*/-1.F);
      EpilogueOp ep;
      if (const auto* bn = std::get_if<BnStage>(&consumer.op)) {
        if (!identity_scale(produced, bn->input_scale)) {
          ++i;
          continue;
        }
        ep.kind = EpilogueOp::Kind::kAffine;
        ep.affine = bn->affine;
        ep.relu = bn->relu_after;
        ep.out_scale = bn->output_scale;
      } else if (const auto* rq = std::get_if<RequantStage>(&consumer.op)) {
        if (!identity_scale(produced, rq->input_scale)) {
          ++i;
          continue;
        }
        ep.kind = EpilogueOp::Kind::kRequant;
        ep.ratio = rq->ratio;
        ep.out_scale = rq->output_scale;
      } else {
        ep.kind = EpilogueOp::Kind::kRelu;
      }

      producer.epilogue.push_back(std::move(ep));
      // A consumer that was itself a fusion target earlier carries its own
      // epilogues (e.g. bn+relu already folded together) — keep them in
      // order behind the new op.
      for (EpilogueOp& tail : consumer.epilogue) producer.epilogue.push_back(std::move(tail));
      producer.io.label = merge_label(producer, consumer, i);
      producer.io.output = consumer.io.output;  // the fold takes over publishing
      nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(i));
      ++fused;
      // Stay at i: the next node shifted down and may fold into the same
      // producer (conv -> bn -> relu collapses in two steps).
    }

    for (Node& n : nodes) pipe.push(std::move(n.op), std::move(n.io), std::move(n.epilogue));
    PassResult r;
    r.name = name();
    r.changed = fused > 0;
    r.count = fused;
    r.detail = std::to_string(fused) + " stage(s) folded into producer epilogues";
    return r;
  }
};

}  // namespace

std::unique_ptr<Pass> make_fuse_stages_pass() { return std::make_unique<FuseStagesPass>(); }

}  // namespace wa::deploy::passes
