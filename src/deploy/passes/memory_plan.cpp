// Static memory planner: liveness analysis over the schedule, in-place
// rewrite selection, a single-arena offset assignment with first-fit reuse,
// and planned-vs-naive peak activation accounting.
//
// The planner simulates exactly the buffer traffic Int8Pipeline::run_impl
// produces — owned operands move, borrowed operands are copied only for a
// non-identity rescale, donated buffers keep their capacity — so
// MemoryPlan::peak_bytes equals the peak run() measures at the reference
// shape (and stays an upper bound when a dynamic scale forces the analysis
// to assume a copy conservatively). The in-place choices it makes:
//   - AddStage writes the join into whichever operand dies at the join
//     (the issue's "in-place residual add": in ResNet the skip branch's or
//     main branch's buffer carries the block output);
//   - a convolution whose input dies inside the kernel (the input is fully
//     consumed by patch lowering / the Winograd scatter before any output
//     byte exists) writes its output over that input when it fits;
//   - a standalone BnStage rewrites its dying input in place.
// run() re-checks every mark against the actual shapes, so a plan computed
// for one reference shape can never corrupt a differently-shaped forward —
// it just falls back to a fresh buffer.
#include <algorithm>
#include <stdexcept>

#include "deploy/passes/pass_internal.hpp"
#include "deploy/passes/passes.hpp"

namespace wa::deploy::passes {

namespace {

using Node = Int8Pipeline::Node;
using Wiring = Int8Pipeline::Wiring;

struct WalkState {
  std::vector<std::int64_t> sizes;   // per value: bytes at the reference shape
  std::vector<float> vscale;         // per value: frozen scale, -1 unknown
  const Wiring* w = nullptr;
  const std::vector<Node>* nodes = nullptr;
};

/// One executor-faithful walk. When `marks` is non-null and `decide` is
/// true, in-place marks are chosen greedily along the way (plan mode);
/// decide=false with marks replays them; marks==nullptr simulates the
/// unplanned executor. Fills donated_from[v] (the value whose buffer value
/// v took over, -1 for fresh) and grew[v] (the donation was a grow: the
/// donor was freed early and the value got a fresh, larger buffer) when the
/// pointers are non-null.
std::int64_t walk_peak(const WalkState& st, std::vector<std::uint8_t>* marks, bool decide,
                       std::vector<std::int32_t>* donated_from,
                       std::vector<std::uint8_t>* grew = nullptr) {
  const std::size_t n = st.nodes->size();
  const Wiring& w = *st.w;
  std::vector<std::int64_t> eff(n + 1, 0);  // live capacity per value
  if (donated_from != nullptr) donated_from->assign(n + 1, -1);
  if (grew != nullptr) grew->assign(n + 1, 0);

  std::int64_t live = st.sizes[0], peak = st.sizes[0];
  eff[0] = st.sizes[0];

  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = (*st.nodes)[i];
    const std::int32_t v1 = w.in1[i], v2 = w.in2[i];
    const bool same = v2 >= 0 && v1 == v2;
    const bool owned1 = !same && w.last_use[static_cast<std::size_t>(v1)] ==
                                     static_cast<std::int32_t>(i);
    const bool owned2 = v2 >= 0 && !same &&
                        w.last_use[static_cast<std::size_t>(v2)] == static_cast<std::int32_t>(i);
    const float s1 = st.vscale[static_cast<std::size_t>(v1)];

    std::int64_t copies = 0;
    bool donated = false;
    std::int32_t donor = -1;
    std::int64_t donor_eff = 0;

    if (std::holds_alternative<AddStage>(node.op)) {
      const auto& add = std::get<AddStage>(node.op);
      if (same) {
        const bool lhs_div = internal::rescale_would_copy(s1, add.lhs_scale);
        const bool rhs_div = internal::rescale_would_copy(s1, add.rhs_scale);
        const bool owned_same =
            w.last_use[static_cast<std::size_t>(v1)] == static_cast<std::int32_t>(i);
        if (lhs_div || rhs_div) {
          copies += st.sizes[static_cast<std::size_t>(v1)];  // lhs copy
          if (!owned_same && rhs_div) copies += st.sizes[static_cast<std::size_t>(v1)];
        }
        // Same-operand joins never run in place.
      } else {
        if (!owned1 && internal::rescale_would_copy(s1, add.lhs_scale)) {
          copies += st.sizes[static_cast<std::size_t>(v1)];
        }
        const float s2 = st.vscale[static_cast<std::size_t>(v2)];
        if (!owned2 && internal::rescale_would_copy(s2, add.rhs_scale)) {
          copies += st.sizes[static_cast<std::size_t>(v2)];
        }
        std::uint8_t m = marks != nullptr ? (*marks)[i] : 0;
        if (marks != nullptr && decide) {
          m = owned1 ? 1 : (owned2 ? 2 : 0);
          (*marks)[i] = m;
        }
        if (m == 1 && owned1) {
          donated = true;
          donor = v1;
          donor_eff = eff[static_cast<std::size_t>(v1)];
        } else if (m == 2 && owned2) {
          donated = true;
          donor = v2;
          donor_eff = eff[static_cast<std::size_t>(v2)];
        }
      }
    } else if (std::holds_alternative<ConcatStage>(node.op)) {
      // Mirrors the AddStage copy analysis, but the join NEVER runs in place:
      // the concatenated output is strictly larger than either operand, so
      // the executor always allocates fresh (mark stays 0).
      const auto& cat = std::get<ConcatStage>(node.op);
      if (same) {
        const bool lhs_div = internal::rescale_would_copy(s1, cat.lhs_scale);
        const bool rhs_div = internal::rescale_would_copy(s1, cat.rhs_scale);
        const bool owned_same =
            w.last_use[static_cast<std::size_t>(v1)] == static_cast<std::int32_t>(i);
        if (lhs_div || rhs_div) {
          copies += st.sizes[static_cast<std::size_t>(v1)];  // lhs copy
          if (!owned_same && rhs_div) copies += st.sizes[static_cast<std::size_t>(v1)];
        }
      } else {
        if (!owned1 && internal::rescale_would_copy(s1, cat.lhs_scale)) {
          copies += st.sizes[static_cast<std::size_t>(v1)];
        }
        const float s2 = st.vscale[static_cast<std::size_t>(v2)];
        if (!owned2 && internal::rescale_would_copy(s2, cat.rhs_scale)) {
          copies += st.sizes[static_cast<std::size_t>(v2)];
        }
      }
      if (marks != nullptr && decide) (*marks)[i] = 0;
    } else {
      const float expected = internal::expected_input_scale(node.op, 0);
      const bool would_copy = !owned1 && internal::rescale_would_copy(s1, expected);
      if (std::holds_alternative<RequantStage>(node.op)) {
        // The requant stage always carries its result in an owned buffer:
        // the moved input, the rescale copy, or a fresh copy of a borrowed
        // input — all the same size as the output.
        donated = true;
        if (owned1) {
          donor = v1;
          donor_eff = eff[static_cast<std::size_t>(v1)];
        } else {
          copies += st.sizes[static_cast<std::size_t>(v1)];
          donor = -1;  // the copy is a fresh buffer, not a planned value
          donor_eff = st.sizes[static_cast<std::size_t>(v1)];
        }
      } else if (std::holds_alternative<FlattenStage>(node.op) ||
                 std::holds_alternative<ReluStage>(node.op)) {
        if (owned1) {
          donated = true;
          donor = v1;
          donor_eff = eff[static_cast<std::size_t>(v1)];
        }
      } else if (std::holds_alternative<ConvStage>(node.op)) {
        if (would_copy) copies += st.sizes[static_cast<std::size_t>(v1)];
        std::uint8_t m = marks != nullptr ? (*marks)[i] : 0;
        if (marks != nullptr && decide) {
          // The conv kernel consumes its input before any output byte
          // exists, so a dying input can donate: its equal-sized buffer
          // hosts the output, or is freed before a larger output is
          // allocated — peak sees max(in, out) either way, never in + out.
          // A SHRINKING donation is refused: the smaller value would carry
          // the donor's slack capacity for its whole lifetime, which can
          // push a later peak ABOVE the naive executor's.
          m = owned1 && st.sizes[i + 1] >= st.sizes[static_cast<std::size_t>(v1)] ? 1 : 0;
          (*marks)[i] = m;
        }
        if (m == 1 && owned1) {
          donated = true;
          donor = v1;
          donor_eff = eff[static_cast<std::size_t>(v1)];
        }
      } else if (std::holds_alternative<BnStage>(node.op)) {
        if (would_copy) copies += st.sizes[static_cast<std::size_t>(v1)];
        std::uint8_t m = marks != nullptr ? (*marks)[i] : 0;
        if (marks != nullptr && decide) {
          m = owned1 ? 1 : 0;
          (*marks)[i] = m;
        }
        if (m == 1 && owned1) {
          donated = true;
          donor = v1;
          donor_eff = eff[static_cast<std::size_t>(v1)];
        }
      } else {
        // pool / avg-pool / linear: always a fresh output; copies only for a
        // borrowed non-identity rescale (linear).
        if (would_copy) copies += st.sizes[static_cast<std::size_t>(v1)];
      }
    }

    // A grow-donation frees the donor before allocating the larger output,
    // so only the growth is additional while the stage runs.
    const bool grow = donated && donor >= 0 && st.sizes[i + 1] > donor_eff;
    const std::int64_t transient =
        live + copies +
        (donated ? std::max<std::int64_t>(0, st.sizes[i + 1] - donor_eff)
                 : st.sizes[i + 1]);
    peak = std::max(peak, transient);

    // Release dying operands (exactly once when both name the same value).
    if (w.last_use[static_cast<std::size_t>(v1)] == static_cast<std::int32_t>(i)) {
      live -= eff[static_cast<std::size_t>(v1)];
      eff[static_cast<std::size_t>(v1)] = 0;
    }
    if (v2 >= 0 && !same &&
        w.last_use[static_cast<std::size_t>(v2)] == static_cast<std::int32_t>(i)) {
      live -= eff[static_cast<std::size_t>(v2)];
      eff[static_cast<std::size_t>(v2)] = 0;
    }

    eff[i + 1] = donated ? std::max(donor_eff, st.sizes[i + 1]) : st.sizes[i + 1];
    live += eff[i + 1];
    peak = std::max(peak, live);
    // A grown output lives in a fresh buffer (its donor was freed early),
    // so for arena layout it is NOT an extension of the donor's block.
    if (donated_from != nullptr) (*donated_from)[i + 1] = grow ? -1 : donor;
    if (grew != nullptr) (*grew)[i + 1] = grow ? 1 : 0;
  }
  return peak;
}

class MemoryPlanPass final : public Pass {
 public:
  std::string name() const override { return "memory-plan"; }

  PassResult run(Int8Pipeline& pipe, const OptimizeOptions& opts) override {
    PassResult r;
    r.name = name();
    if (opts.reference_input.empty()) {
      r.detail = "skipped: no reference input shape provided";
      return r;
    }
    if (pipe.size() == 0) {
      r.detail = "empty pipeline";
      return r;
    }

    const Wiring w = pipe.resolve_wiring();
    const std::vector<Shape> shapes = infer_value_shapes(pipe, opts.reference_input);
    const std::size_t n = pipe.size();

    WalkState st;
    st.w = &w;
    st.nodes = &pipe.nodes();
    st.sizes.resize(n + 1);
    for (std::size_t v = 0; v <= n; ++v) st.sizes[v] = numel(shapes[v]);  // int8: 1 byte/elem

    // Per-value frozen scales, mirroring what run() will produce.
    st.vscale.assign(n + 1, -1.F);
    if (const auto* first = std::get_if<ConvStage>(&pipe.nodes().front().op)) {
      st.vscale[0] = first->input_scale > 0.F ? first->input_scale : -1.F;
    }
    for (std::size_t i = 0; i < n; ++i) {
      st.vscale[i + 1] = internal::node_result_scale(
          pipe.nodes()[i], st.vscale[static_cast<std::size_t>(w.in1[i])]);
    }

    MemoryPlan plan;
    plan.reference_input = opts.reference_input;
    plan.value_bytes = st.sizes;
    plan.last_use = w.last_use;
    plan.in_place.assign(n, 0);

    std::vector<std::int32_t> donated_from;
    std::vector<std::uint8_t> grew;
    plan.peak_bytes = walk_peak(st, &plan.in_place, /*decide=*/true, &donated_from, &grew);
    plan.naive_peak_bytes = walk_peak(st, nullptr, false, nullptr);

    // First-fit arena layout over value live intervals [birth, death):
    // time t = value index; a value dies one step after its last use (its
    // consumer's output must coexist with it unless it was donated).
    plan.offsets.assign(n + 1, 0);
    std::vector<std::int64_t> eff(n + 1, 0);
    struct Block {
      std::int64_t offset = 0, size = 0;
      std::int32_t birth = 0, death = 0;
      std::int32_t value = 0;  // representative (first) value in the buffer
    };
    std::vector<Block> blocks;
    std::vector<std::int32_t> block_of(n + 1, -1);
    // A value normally survives through its last consumer's stage (the
    // consumer's output coexists with it); a grow-donated input is freed
    // BEFORE its consumer's output exists, so its interval ends one step
    // earlier — letting first-fit lay the grown output over its space.
    std::vector<std::uint8_t> freed_early(n + 1, 0);
    for (std::size_t v = 1; v <= n; ++v) {
      if (grew[v] && w.in1[v - 1] >= 0) freed_early[static_cast<std::size_t>(w.in1[v - 1])] = 1;
    }
    const auto death_of = [&](std::size_t v) {
      if (w.last_use[v] >= 0) return w.last_use[v] + (freed_early[v] ? 1 : 2);
      return v == n ? static_cast<std::int32_t>(n) + 2 : static_cast<std::int32_t>(v) + 1;
    };
    for (std::size_t v = 0; v <= n; ++v) {
      const std::int32_t birth = static_cast<std::int32_t>(v);
      const std::int32_t death = death_of(v);
      const std::int32_t donor = v == 0 ? -1 : donated_from[v];
      if (donor >= 0) {
        // Shares (extends) the donor's block.
        const std::int32_t b = block_of[static_cast<std::size_t>(donor)];
        block_of[v] = b;
        blocks[static_cast<std::size_t>(b)].death =
            std::max(blocks[static_cast<std::size_t>(b)].death, death);
        plan.offsets[v] = blocks[static_cast<std::size_t>(b)].offset;
        eff[v] = blocks[static_cast<std::size_t>(b)].size;
        continue;
      }
      eff[v] = st.sizes[v];
      // Candidate offsets: 0 and one past each temporally-overlapping block.
      std::int64_t offset = 0;
      for (;;) {
        bool moved = false;
        for (const Block& b : blocks) {
          const bool time_overlap = birth < b.death && b.birth < death;
          const bool space_overlap = offset < b.offset + b.size && b.offset < offset + eff[v];
          if (time_overlap && space_overlap) {
            offset = b.offset + b.size;
            moved = true;
          }
        }
        if (!moved) break;
      }
      plan.offsets[v] = offset;
      block_of[v] = static_cast<std::int32_t>(blocks.size());
      blocks.push_back({offset, eff[v], birth, death, static_cast<std::int32_t>(v)});
      plan.arena_bytes = std::max(plan.arena_bytes, offset + eff[v]);
    }

    pipe.set_plan(std::move(plan));
    const MemoryPlan& p = *pipe.plan();
    const double pct = p.naive_peak_bytes > 0
                           ? 100.0 * (1.0 - static_cast<double>(p.peak_bytes) /
                                                static_cast<double>(p.naive_peak_bytes))
                           : 0.0;
    r.changed = true;
    r.count = static_cast<std::size_t>(
        std::count_if(p.in_place.begin(), p.in_place.end(), [](std::uint8_t m) { return m != 0; }));
    r.detail = "peak " + std::to_string(p.peak_bytes) + " B vs naive " +
               std::to_string(p.naive_peak_bytes) + " B (" + std::to_string(pct) +
               "% smaller), arena " + std::to_string(p.arena_bytes) + " B";
    return r;
  }
};

}  // namespace

std::unique_ptr<Pass> make_memory_plan_pass() { return std::make_unique<MemoryPlanPass>(); }

}  // namespace wa::deploy::passes
