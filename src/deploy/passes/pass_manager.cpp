#include <cmath>
#include <stdexcept>

#include "deploy/passes/pass_internal.hpp"
#include "deploy/passes/passes.hpp"

namespace wa::deploy::passes {

std::vector<PassResult> PassManager::run(Int8Pipeline& pipe, const OptimizeOptions& opts) const {
  std::vector<PassResult> results;
  results.reserve(passes_.size());
  for (const auto& pass : passes_) results.push_back(pass->run(pipe, opts));
  return results;
}

OptimizeReport optimize_pipeline(Int8Pipeline& pipe, const OptimizeOptions& opts) {
  PassManager pm;
  if (opts.fuse) pm.add(make_fuse_stages_pass());
  if (opts.eliminate_dead) pm.add(make_dce_pass());
  if (opts.plan_memory) pm.add(make_memory_plan_pass());

  OptimizeReport report;
  report.passes = pm.run(pipe, opts);
  for (const PassResult& r : report.passes) {
    if (r.name == "fuse-stages") report.fused_stages = r.count;
    if (r.name == "dead-stage-elimination") report.removed_stages = r.count;
  }
  if (const MemoryPlan* plan = pipe.plan(); plan != nullptr) {
    report.planned_peak_bytes = plan->peak_bytes;
    report.naive_peak_bytes = plan->naive_peak_bytes;
    report.arena_bytes = plan->arena_bytes;
  }
  // Final wiring re-validation: every rewrite above re-pushed its nodes, but
  // a cheap end-to-end resolve keeps "passes leave valid graphs" a checked
  // invariant rather than a convention.
  pipe.resolve_wiring();
  return report;
}

std::vector<Shape> infer_value_shapes(const Int8Pipeline& pipe, const Shape& input_shape) {
  if (input_shape.size() != 4 || numel(input_shape) <= 0) {
    throw std::invalid_argument("infer_value_shapes: input shape must be a non-empty [N,C,H,W], got " +
                                to_string(input_shape));
  }
  const auto& nodes = pipe.nodes();
  const Int8Pipeline::Wiring w = pipe.resolve_wiring();
  std::vector<Shape> shapes(nodes.size() + 1);
  shapes[0] = input_shape;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Int8Pipeline::Node& node = nodes[i];
    const std::string where = stage_where(node, i);
    const auto expect = [&where](bool cond, const std::string& msg) {
      if (!cond) throw std::invalid_argument(where + ": " + msg);
    };
    const Shape& in = shapes[static_cast<std::size_t>(w.in1[i])];

    shapes[i + 1] = std::visit(
        [&](const auto& st) -> Shape {
          using T = std::decay_t<decltype(st)>;
          if constexpr (std::is_same_v<T, ConvStage>) {
            expect(in.size() == 4,
                   "convolution expects a 4-d [N,C,H,W] activation, got " + to_string(in));
            expect(in[1] == st.in_channels,
                   "activation has " + std::to_string(in[1]) + " channels, stage expects " +
                       std::to_string(st.in_channels));
            const std::int64_t oh = (in[2] + 2 * st.pad - st.kernel) / st.stride + 1;
            const std::int64_t ow = (in[3] + 2 * st.pad - st.kernel) / st.stride + 1;
            expect(oh >= 1 && ow >= 1,
                   "activation " + to_string(in) + " is smaller than the " +
                       std::to_string(st.kernel) + "x" + std::to_string(st.kernel) + " kernel");
            return Shape{in[0], st.out_channels, oh, ow};
          } else if constexpr (std::is_same_v<T, PoolStage>) {
            expect(in.size() == 4, "max-pool expects [N,C,H,W], got " + to_string(in));
            const std::int64_t oh = (in[2] - st.kernel) / st.stride + 1;
            const std::int64_t ow = (in[3] - st.kernel) / st.stride + 1;
            expect(oh >= 1 && ow >= 1, "activation " + to_string(in) + " is smaller than the pool");
            return Shape{in[0], in[1], oh, ow};
          } else if constexpr (std::is_same_v<T, FlattenStage>) {
            expect(!in.empty(), "flatten expects a batched activation");
            std::int64_t features = 1;
            for (std::size_t d = 1; d < in.size(); ++d) features *= in[d];
            return Shape{in[0], features};
          } else if constexpr (std::is_same_v<T, AvgPoolStage>) {
            expect(in.size() == 4, "avg-pool expects [N,C,H,W], got " + to_string(in));
            return Shape{in[0], in[1]};
          } else if constexpr (std::is_same_v<T, LinearStage>) {
            expect(in.size() == 2, "linear expects a 2-d [N, F] activation, got " + to_string(in) +
                                       " (flatten or avg-pool first)");
            expect(in[1] == st.packed.in_features,
                   "activation has " + std::to_string(in[1]) + " features, stage expects " +
                       std::to_string(st.packed.in_features));
            return Shape{in[0], st.packed.out_features};
          } else if constexpr (std::is_same_v<T, BnStage>) {
            expect(in.size() == 4 || in.size() == 2,
                   "batch-norm expects [N,C,H,W] or [N,C], got " + to_string(in));
            expect(in[1] == st.scale.numel(),
                   "activation has " + std::to_string(in[1]) + " channels, batch-norm has " +
                       std::to_string(st.scale.numel()));
            return in;
          } else if constexpr (std::is_same_v<T, AddStage>) {
            const Shape& rhs = shapes[static_cast<std::size_t>(w.in2[i])];
            expect(in == rhs, "skip-add branch shapes " + to_string(in) + " vs " +
                                  to_string(rhs) + " do not match");
            return in;
          } else if constexpr (std::is_same_v<T, ConcatStage>) {
            const Shape& rhs = shapes[static_cast<std::size_t>(w.in2[i])];
            expect(in.size() == 4 && rhs.size() == 4,
                   "concat expects 4-d [N,C,H,W] operands, got " + to_string(in) + " and " +
                       to_string(rhs));
            expect(in[0] == rhs[0] && in[2] == rhs[2] && in[3] == rhs[3],
                   "concat branch shapes " + to_string(in) + " vs " + to_string(rhs) +
                       " disagree outside the channel axis");
            return Shape{in[0], in[1] + rhs[1], in[2], in[3]};
          } else {  // ReluStage / RequantStage: levels in, levels out
            return in;
          }
        },
        node.op);
    // Fused batch-norm epilogues carry their own channel counts.
    for (const EpilogueOp& ep : node.epilogue) {
      if (ep.kind != EpilogueOp::Kind::kAffine) continue;
      const Shape& s = shapes[i + 1];
      expect(s.size() >= 2 && s[1] == static_cast<std::int64_t>(ep.affine.m0.size()),
             "fused batch-norm channels disagree with the producing stage");
    }
  }
  return shapes;
}

}  // namespace wa::deploy::passes
