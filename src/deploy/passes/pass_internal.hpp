// Helpers shared by the passes (not part of the public surface).
#pragma once

#include "deploy/passes/passes.hpp"

namespace wa::deploy::passes::internal {

/// The scale a stage expects on one of its operands before it runs (the
/// executor rescales onto it; identity when the producer already matches).
/// -1 when the stage consumes levels at whatever scale arrives
/// (pool/flatten/avg-pool/relu).
inline float expected_input_scale(const Stage& s, int operand) {
  return std::visit(
      [operand](const auto& st) -> float {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage>) return st.input_scale;
        else if constexpr (std::is_same_v<T, LinearStage>) return st.input_scale;
        else if constexpr (std::is_same_v<T, BnStage>) return st.input_scale;
        else if constexpr (std::is_same_v<T, RequantStage>) return st.input_scale;
        else if constexpr (std::is_same_v<T, AddStage> || std::is_same_v<T, ConcatStage>) {
          return operand == 0 ? st.lhs_scale : st.rhs_scale;
        } else {
          return -1.F;
        }
      },
      s);
}

/// The scale of a node's result AFTER its epilogues, given the scale of its
/// (first) input value. -1 when unknown (dynamic scales). Mirrors what
/// run() produces so the planner's rescale-copy analysis matches execution.
inline float node_result_scale(const Int8Pipeline::Node& node, float in_scale) {
  float base = std::visit(
      [in_scale](const auto& st) -> float {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage>) {
          return nn::is_winograd(st.algo) ? st.stage_scales.output : st.output_scale;
        } else if constexpr (std::is_same_v<T, LinearStage>) {
          return st.output_scale;
        } else if constexpr (std::is_same_v<T, BnStage>) {
          return st.output_scale;
        } else if constexpr (std::is_same_v<T, AddStage>) {
          return st.output_scale;
        } else if constexpr (std::is_same_v<T, ConcatStage>) {
          return st.output_scale;
        } else if constexpr (std::is_same_v<T, RequantStage>) {
          return st.output_scale;
        } else {
          return in_scale;  // pool/flatten/avg-pool/relu pass levels through
        }
      },
      node.op);
  for (const EpilogueOp& ep : node.epilogue) {
    if (ep.kind == EpilogueOp::Kind::kRequant) base = ep.out_scale;
    if (ep.kind == EpilogueOp::Kind::kAffine) base = ep.affine.out_scale;
    // kRelu preserves the scale.
  }
  return base;
}

/// The planner's conservative form of the executor's rescale predicate:
/// an unknown (dynamic) producer scale must be assumed to copy.
inline bool rescale_would_copy(float current, float target) {
  if (target <= 0.F) return false;
  if (current <= 0.F) return true;  // unknown producer scale: assume a copy
  return rescale_changes_levels(current, target);
}

}  // namespace wa::deploy::passes::internal
