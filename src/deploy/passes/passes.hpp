// Compiler middle-end for compiled Int8Pipelines: a small pass manager that
// rewrites the lowered stage graph BEFORE run() is ever called.
//
// Production quantized-Winograd stacks (LANCE-style) win as much from what
// happens between the kernels as from the kernels themselves: the
// quantize -> transform -> requant chain is reordered and fused around the
// Winograd GEMMs, and the activation memory is planned statically so the
// working set stays small and allocation-free. This subsystem brings that
// middle-end here, with three initial passes:
//
//   1. fusion (make_fuse_stages_pass): fold standalone ReluStage /
//      RequantStage / BnStage nodes into the producing conv/linear/add
//      stage as in-place EpilogueOps, so the intermediate int8 tensor never
//      round-trips through an activation slot. Fusion only fires when it is
//      provably bit-preserving (the producer's frozen output scale matches
//      the folded stage's expected input scale exactly), so optimized
//      logits are identical to unoptimized ones.
//   2. dead-stage elimination (make_dce_pass): drop stages whose results
//      can never reach the pipeline output (published slots nobody reads,
//      and everything that only fed them), then re-validate the wiring.
//   3. static memory planning (make_memory_plan_pass): compute per-value
//      live ranges over the schedule, simulate the executor's buffer
//      traffic for a reference input shape, choose in-place rewrites (the
//      residual add writes into the branch that dies at the join; a
//      convolution whose input dies inside the kernel writes its output
//      over it), assign every value an offset in a single arena with
//      first-fit reuse, and attach the resulting MemoryPlan — including
//      planned and naive peak activation bytes — to the pipeline.
//
// optimize_pipeline() runs the canonical sequence. Optimized execution is
// bit-identical to unoptimized execution for every valid graph; the
// differential fuzz harness (tests/test_pipeline_fuzz.cpp) enforces this
// across backends on hundreds of randomly generated graphs.
//
// Freeze scales BEFORE optimizing: fusion and the planner's rescale-copy
// analysis key off frozen scales, and a plan computed against dynamic
// scales stays conservative (planned peak >= measured peak).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/pipeline.hpp"

namespace wa::deploy::passes {

struct OptimizeOptions {
  bool fuse = true;
  bool eliminate_dead = true;
  bool plan_memory = true;
  /// Input shape ([N,C,H,W]) the memory plan's sizes and offsets are
  /// computed for. Empty skips the planning pass (fusion/DCE are
  /// shape-independent). run() re-checks in-place applicability against the
  /// actual shape, so a plan never breaks a differently-shaped forward.
  Shape reference_input;
};

struct PassResult {
  std::string name;
  bool changed = false;
  std::size_t count = 0;  // pass-specific: stages fused / removed, ...
  std::string detail;     // human-readable summary ("fused 16 stages", ...)
};

/// One graph rewrite. Passes may assume the pipeline's wiring is valid on
/// entry and must leave it valid (re-pushing rewritten nodes re-validates).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual PassResult run(Int8Pipeline& pipe, const OptimizeOptions& opts) = 0;
};

std::unique_ptr<Pass> make_fuse_stages_pass();
std::unique_ptr<Pass> make_dce_pass();
std::unique_ptr<Pass> make_memory_plan_pass();

/// Ordered pass list; run() executes each pass once and collects results.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  std::vector<PassResult> run(Int8Pipeline& pipe, const OptimizeOptions& opts) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

struct OptimizeReport {
  std::vector<PassResult> passes;
  std::size_t fused_stages = 0;    // stages folded into producer epilogues
  std::size_t removed_stages = 0;  // dead stages eliminated
  /// Planned / unplanned peak activation bytes at the reference shape
  /// (0 when planning was skipped). planned == what run() measures for the
  /// optimized pipeline when every scale is frozen.
  std::int64_t planned_peak_bytes = 0;
  std::int64_t naive_peak_bytes = 0;
  std::int64_t arena_bytes = 0;
};

/// The canonical sequence: fuse -> eliminate dead stages -> plan memory,
/// then re-validate the wiring. Mutates `pipe` in place (stage weights are
/// moved, never copied) and attaches the MemoryPlan when planning ran.
OptimizeReport optimize_pipeline(Int8Pipeline& pipe, const OptimizeOptions& opts = {});

/// Static shape inference over the dataflow: the shape of every value
/// (value 0 = quantized input, i+1 = stage i's output) for a [N,C,H,W]
/// input. Throws std::invalid_argument labeled with the stage for graphs
/// whose wiring is shape-inconsistent (channel mismatches, under-sized
/// activations, adds joining different shapes, ...) — the same class of
/// errors run() reports, but caught before any kernel executes.
std::vector<Shape> infer_value_shapes(const Int8Pipeline& pipe, const Shape& input_shape);

}  // namespace wa::deploy::passes
