// Finite-difference gradient verification for custom ops.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace wa::ag {

struct GradCheckResult {
  bool ok = true;
  float max_abs_err = 0.F;
  float max_rel_err = 0.F;
  std::string detail;  // first offending (input, element) when !ok
};

/// Compare analytic gradients of `fn` (mapping inputs -> scalar Variable)
/// against central finite differences perturbing every element of every
/// input. `fn` must be deterministic and re-entrant: it is invoked
/// 2*numel+1 times on mutated copies of `inputs`.
///
/// eps is the perturbation; tol bounds max(|analytic - numeric|) accepted
/// after relative normalisation. Inputs are modified in place during probing
/// and restored before returning.
GradCheckResult grad_check(
    const std::function<Variable(std::vector<Variable>&)>& fn, std::vector<Variable>& inputs,
    float eps = 1e-3F, float tol = 5e-2F);

}  // namespace wa::ag
