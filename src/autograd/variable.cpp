#include "autograd/variable.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace wa::ag {

void Node::accum_grad(const Tensor& g) {
  if (!grad_allocated) {
    grad = Tensor::zeros(value.shape());
    grad_allocated = true;
  }
  check_same_shape(grad.shape(), g.shape(), "accum_grad");
  grad += g;
}

Tensor& Node::ensure_grad() {
  if (!grad_allocated) {
    grad = Tensor::zeros(value.shape());
    grad_allocated = true;
  }
  return grad;
}

Variable::Variable(Tensor value, bool requires_grad, std::string name)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->name = std::move(name);
}

const Tensor& Variable::grad() const {
  if (!node_) throw std::logic_error("grad() on undefined Variable");
  return node_->ensure_grad();
}

void Variable::zero_grad() {
  if (node_ && node_->grad_allocated) node_->grad.fill(0.F);
}

void Variable::sgd_step(float lr) {
  if (!node_ || !node_->grad_allocated) return;
  auto v = node_->value.data();
  auto g = node_->grad.data();
  for (std::size_t i = 0; i < v.size(); ++i) v[i] -= lr * g[i];
}

std::vector<Node*> reverse_topo_order(const Variable& root) {
  std::vector<Node*> order;
  if (!root.defined()) return order;
  std::unordered_set<Node*> visited;
  // Iterative DFS post-order, then reverse: children (parents in graph
  // terminology) come after the node that consumes them.
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack{{root.node().get(), 0}};
  visited.insert(root.node().get());
  std::vector<Node*> post;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      post.push_back(f.node);
      stack.pop_back();
    }
  }
  order.assign(post.rbegin(), post.rend());
  return order;
}

void Variable::backward(const Tensor* seed) const {
  if (!node_) throw std::logic_error("backward() on undefined Variable");
  if (seed != nullptr) {
    check_same_shape(seed->shape(), node_->value.shape(), "backward seed");
    node_->ensure_grad() += *seed;
  } else {
    Tensor& g = node_->ensure_grad();
    g.fill(0.F);
    g += Tensor::ones(node_->value.shape());
  }
  for (Node* n : reverse_topo_order(*this)) {
    if (n->backward_fn && n->grad_allocated) n->backward_fn(*n);
  }
}

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool grad_mode_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

GraphStats graph_stats(const Variable& root) {
  GraphStats st;
  for (const Node* n : reverse_topo_order(root)) {
    ++st.nodes;
    st.value_bytes += n->value.numel() * static_cast<std::int64_t>(sizeof(float));
    if (n->grad_allocated) {
      st.grad_bytes += n->grad.numel() * static_cast<std::int64_t>(sizeof(float));
    }
  }
  return st;
}

Variable apply_op(std::string name, std::vector<Variable> parents, Tensor out_value,
                  std::function<void(Node&)> backward) {
  bool needs_grad = g_grad_enabled;
  if (needs_grad) {
    needs_grad = false;
    for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  }
  Variable out(std::move(out_value), needs_grad, std::move(name));
  if (needs_grad) {
    auto node = out.node();
    node->parents.reserve(parents.size());
    for (auto& p : parents) node->parents.push_back(p.node());
    node->backward_fn = std::move(backward);
  }
  return out;
}

}  // namespace wa::ag
