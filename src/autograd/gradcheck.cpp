#include "autograd/gradcheck.hpp"

#include <cmath>
#include <sstream>

namespace wa::ag {

GradCheckResult grad_check(const std::function<Variable(std::vector<Variable>&)>& fn,
                           std::vector<Variable>& inputs, float eps, float tol) {
  GradCheckResult res;

  // Analytic pass.
  for (auto& in : inputs) in.zero_grad();
  Variable out = fn(inputs);
  if (out.numel() != 1) {
    res.ok = false;
    res.detail = "grad_check: fn must return a scalar";
    return res;
  }
  out.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) analytic.push_back(in.grad());

  // Numeric probing.
  for (std::size_t vi = 0; vi < inputs.size(); ++vi) {
    if (!inputs[vi].requires_grad()) continue;
    auto vals = inputs[vi].value().data();
    for (std::size_t e = 0; e < vals.size(); ++e) {
      const float orig = vals[e];
      vals[e] = orig + eps;
      const float f_plus = fn(inputs).value().at(0);
      vals[e] = orig - eps;
      const float f_minus = fn(inputs).value().at(0);
      vals[e] = orig;

      const float numeric = (f_plus - f_minus) / (2.F * eps);
      const float exact = analytic[vi].data()[e];
      const float abs_err = std::fabs(numeric - exact);
      const float rel_err = abs_err / std::max(1.F, std::max(std::fabs(numeric), std::fabs(exact)));
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
      res.max_rel_err = std::max(res.max_rel_err, rel_err);
      if (rel_err > tol && res.ok) {
        res.ok = false;
        std::ostringstream os;
        os << "input " << vi << " elem " << e << ": analytic=" << exact << " numeric=" << numeric
           << " rel_err=" << rel_err;
        res.detail = os.str();
      }
    }
  }
  return res;
}

}  // namespace wa::ag
