// Differentiable primitive operations on Variables.
//
// Layer-level fused ops (convolutions, batch-norm, pooling, the
// Winograd-aware pipeline) live next to their layers; this header holds the
// generic building blocks shared by all of them.
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace wa::ag {

/// Elementwise sum; shapes must match.
Variable add(const Variable& a, const Variable& b);
/// Elementwise difference.
Variable sub(const Variable& a, const Variable& b);
/// Hadamard product.
Variable mul(const Variable& a, const Variable& b);
/// Multiply by a constant.
Variable scale(const Variable& a, float s);

/// [M,K] x [K,N] -> [M,N].
Variable matmul(const Variable& a, const Variable& b);

/// Fully connected: x [N,in] with weight [out,in] and bias [out] -> [N,out].
Variable linear(const Variable& x, const Variable& weight, const Variable& bias);

/// max(x, 0).
Variable relu(const Variable& x);

/// View with identical element count.
Variable reshape(const Variable& x, Shape shape);

/// Concatenate along `axis` (used by SqueezeNet fire modules, axis=1).
Variable concat(const std::vector<Variable>& parts, std::int64_t axis);

/// Sum of all elements -> scalar (shape [1]).
Variable sum(const Variable& x);
/// Mean of all elements -> scalar (shape [1]).
Variable mean(const Variable& x);

/// Softmax cross-entropy averaged over the batch.
/// logits: [N, classes]; labels: size-N class indices. Returns shape [1].
Variable softmax_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& labels);

/// Fraction of rows whose argmax equals the label (no gradient).
float accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace wa::ag
