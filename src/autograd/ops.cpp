#include "autograd/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace wa::ag {

Variable add(const Variable& a, const Variable& b) {
  check_same_shape(a.shape(), b.shape(), "ag::add");
  Tensor out = a.value() + b.value();
  auto an = a.node();
  auto bn = b.node();
  return apply_op("add", {a, b}, std::move(out), [an, bn](Node& n) {
    if (an->requires_grad) an->accum_grad(n.grad);
    if (bn->requires_grad) bn->accum_grad(n.grad);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a.shape(), b.shape(), "ag::sub");
  Tensor out = a.value() - b.value();
  auto an = a.node();
  auto bn = b.node();
  return apply_op("sub", {a, b}, std::move(out), [an, bn](Node& n) {
    if (an->requires_grad) an->accum_grad(n.grad);
    if (bn->requires_grad) bn->accum_grad(n.grad * -1.F);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a.shape(), b.shape(), "ag::mul");
  Tensor out = a.value() * b.value();
  auto an = a.node();
  auto bn = b.node();
  return apply_op("mul", {a, b}, std::move(out), [an, bn](Node& n) {
    if (an->requires_grad) an->accum_grad(n.grad * bn->value);
    if (bn->requires_grad) bn->accum_grad(n.grad * an->value);
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value() * s;
  auto an = a.node();
  return apply_op("scale", {a}, std::move(out), [an, s](Node& n) {
    if (an->requires_grad) an->accum_grad(n.grad * s);
  });
}

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = wa::matmul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return apply_op("matmul", {a, b}, std::move(out), [an, bn](Node& n) {
    if (an->requires_grad) an->accum_grad(wa::matmul_nt(n.grad, bn->value));
    if (bn->requires_grad) bn->accum_grad(wa::matmul_tn(an->value, n.grad));
  });
}

Variable linear(const Variable& x, const Variable& weight, const Variable& bias) {
  if (x.shape().size() != 2 || weight.shape().size() != 2 || bias.shape().size() != 1 ||
      x.shape()[1] != weight.shape()[1] || weight.shape()[0] != bias.shape()[0]) {
    throw std::invalid_argument("ag::linear: incompatible shapes x=" + to_string(x.shape()) +
                                " w=" + to_string(weight.shape()) +
                                " b=" + to_string(bias.shape()));
  }
  const std::int64_t batch = x.shape()[0], out_f = weight.shape()[0];
  Tensor out = wa::matmul_nt(x.value(), weight.value());
  for (std::int64_t i = 0; i < batch; ++i)
    for (std::int64_t j = 0; j < out_f; ++j) out(i, j) += bias.value().at(j);

  auto xn = x.node();
  auto wn = weight.node();
  auto bn = bias.node();
  return apply_op("linear", {x, weight, bias}, std::move(out), [xn, wn, bn, batch, out_f](Node& n) {
    if (xn->requires_grad) xn->accum_grad(wa::matmul(n.grad, wn->value));
    if (wn->requires_grad) wn->accum_grad(wa::matmul_tn(n.grad, xn->value));
    if (bn->requires_grad) {
      Tensor db(Shape{out_f});
      for (std::int64_t i = 0; i < batch; ++i)
        for (std::int64_t j = 0; j < out_f; ++j) db.at(j) += n.grad(i, j);
      bn->accum_grad(db);
    }
  });
}

Variable relu(const Variable& x) {
  Tensor out = x.value();
  for (auto& v : out.data()) v = v > 0.F ? v : 0.F;
  auto xn = x.node();
  return apply_op("relu", {x}, std::move(out), [xn](Node& n) {
    if (!xn->requires_grad) return;
    Tensor dx = n.grad;
    auto xv = xn->value.data();
    auto dxv = dx.data();
    for (std::size_t i = 0; i < dxv.size(); ++i) {
      if (xv[i] <= 0.F) dxv[i] = 0.F;
    }
    xn->accum_grad(dx);
  });
}

Variable reshape(const Variable& x, Shape shape) {
  Tensor out = x.value().reshape(shape);
  auto xn = x.node();
  return apply_op("reshape", {x}, std::move(out), [xn](Node& n) {
    if (xn->requires_grad) xn->accum_grad(n.grad.reshape(xn->value.shape()));
  });
}

Variable concat(const std::vector<Variable>& parts, std::int64_t axis) {
  if (parts.empty()) throw std::invalid_argument("ag::concat: no inputs");
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p.value());
  Tensor out = Tensor::concat(values, axis);

  std::vector<std::shared_ptr<Node>> nodes;
  nodes.reserve(parts.size());
  for (const auto& p : parts) nodes.push_back(p.node());

  return apply_op("concat", parts, std::move(out), [nodes, axis](Node& n) {
    // Split n.grad back along `axis` in the same order.
    std::int64_t outer = 1, inner = 1, total = n.value.shape()[static_cast<std::size_t>(axis)];
    for (std::int64_t d = 0; d < axis; ++d) outer *= n.value.shape()[static_cast<std::size_t>(d)];
    for (std::size_t d = static_cast<std::size_t>(axis) + 1; d < n.value.shape().size(); ++d) {
      inner *= n.value.shape()[d];
    }
    std::int64_t off = 0;
    for (const auto& pn : nodes) {
      const std::int64_t a = pn->value.shape()[static_cast<std::size_t>(axis)];
      if (pn->requires_grad) {
        Tensor g(pn->value.shape());
        for (std::int64_t o = 0; o < outer; ++o) {
          const float* src = n.grad.raw() + (o * total + off) * inner;
          std::copy(src, src + a * inner, g.raw() + o * a * inner);
        }
        pn->accum_grad(g);
      }
      off += a;
    }
  });
}

Variable sum(const Variable& x) {
  Tensor out(Shape{1});
  out.at(0) = x.value().sum();
  auto xn = x.node();
  return apply_op("sum", {x}, std::move(out), [xn](Node& n) {
    if (!xn->requires_grad) return;
    Tensor g(xn->value.shape(), n.grad.at(0));
    xn->accum_grad(g);
  });
}

Variable mean(const Variable& x) {
  const float inv = 1.F / static_cast<float>(std::max<std::int64_t>(x.numel(), 1));
  Tensor out(Shape{1});
  out.at(0) = x.value().mean();
  auto xn = x.node();
  return apply_op("mean", {x}, std::move(out), [xn, inv](Node& n) {
    if (!xn->requires_grad) return;
    Tensor g(xn->value.shape(), n.grad.at(0) * inv);
    xn->accum_grad(g);
  });
}

Variable softmax_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& labels) {
  const auto& lv = logits.value();
  if (lv.dim() != 2 || static_cast<std::size_t>(lv.size(0)) != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: logits " + to_string(lv.shape()) +
                                " vs " + std::to_string(labels.size()) + " labels");
  }
  const std::int64_t n = lv.size(0), c = lv.size(1);

  // Stable log-softmax; remember probabilities for the backward pass.
  auto probs = std::make_shared<Tensor>(Shape{n, c});
  double loss_acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    float row_max = lv(i, 0);
    for (std::int64_t j = 1; j < c; ++j) row_max = std::max(row_max, lv(i, j));
    double denom = 0;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(lv(i, j) - row_max));
    const double log_denom = std::log(denom);
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) throw std::out_of_range("softmax_cross_entropy: label out of range");
    loss_acc -= static_cast<double>(lv(i, y) - row_max) - log_denom;
    for (std::int64_t j = 0; j < c; ++j) {
      (*probs)(i, j) =
          static_cast<float>(std::exp(static_cast<double>(lv(i, j) - row_max) - log_denom));
    }
  }
  Tensor out(Shape{1});
  out.at(0) = static_cast<float>(loss_acc / static_cast<double>(n));

  auto ln = logits.node();
  auto labels_copy = labels;
  return apply_op("softmax_ce", {logits}, std::move(out),
                  [ln, probs, labels_copy, n, c](Node& node) {
                    if (!ln->requires_grad) return;
                    const float s = node.grad.at(0) / static_cast<float>(n);
                    Tensor g = *probs;
                    for (std::int64_t i = 0; i < n; ++i) {
                      g(i, labels_copy[static_cast<std::size_t>(i)]) -= 1.F;
                    }
                    g *= s;
                    ln->accum_grad(g);
                  });
}

float accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  if (logits.dim() != 2 || static_cast<std::size_t>(logits.size(0)) != labels.size()) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  const std::int64_t n = logits.size(0), c = logits.size(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (logits(i, j) > logits(i, best)) best = j;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return n > 0 ? static_cast<float>(correct) / static_cast<float>(n) : 0.F;
}

}  // namespace wa::ag
