// Gradient checkpointing (Chen et al. 2016, "Training deep nets with
// sublinear memory cost").
//
// The paper's discussion section: "A direct implementation of Eq. 1
// requires saving the intermediate outputs of each matrix-matrix
// multiplication ... This results in high memory usage. In this work we had
// to rely on gradient checkpointing to lower the memory peak during
// training, at the cost of additional computation." This module is that
// mechanism for this repo's tape:
//
//   forward:  run the segment under NoGradGuard — only its OUTPUT VALUE is
//             kept, no interior nodes, no saved intermediates;
//   backward: re-run the segment with the tape enabled, seed the recomputed
//             output with the incoming gradient, and run the segment's
//             backward; parameter gradients accumulate into the shared
//             parameter nodes, the input gradient is routed to the real
//             input node.
//
// Caveat (same as other frameworks): the segment runs twice, so stateful
// side effects — batch-norm running statistics, quantization-observer EMA
// updates — fire twice per step. Batch-norm normalizes training batches
// with BATCH statistics, so outputs and gradients are unaffected; observer
// scales shift by one extra EMA step, a perturbation quantization-aware
// training is robust to. Segments that must be bit-identical should be
// checkpointed only in FP32 mode (see the tests).
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.hpp"

namespace wa::ag {

/// Run `segment` without retaining its interior graph; recompute it during
/// backward. `params` must list every trainable Variable the segment
/// touches (module parameters): they become parents of the checkpoint node
/// so gradient requirements and node lifetimes are tracked correctly.
///
/// Returns the segment output. Gradients reaching the output flow to
/// `input` and into `params` exactly as without checkpointing (bit-identical
/// for deterministic, stateless segments).
Variable checkpoint(std::function<Variable(const Variable&)> segment, const Variable& input,
                    std::vector<Variable> params = {});

}  // namespace wa::ag
