#include "autograd/checkpoint.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace wa::ag {

Variable checkpoint(std::function<Variable(const Variable&)> segment, const Variable& input,
                    std::vector<Variable> params) {
  if (!input.defined()) throw std::invalid_argument("checkpoint: undefined input");

  // Pass 1: values only. The guard stops apply_op from recording parents or
  // backward closures, so the segment's intermediates die with this scope.
  Tensor out_value;
  {
    NoGradGuard guard;
    out_value = segment(input).value();
  }

  auto xn = input.node();
  auto seg = std::make_shared<std::function<Variable(const Variable&)>>(std::move(segment));

  std::vector<Variable> parents{input};
  parents.insert(parents.end(), params.begin(), params.end());

  auto backward = [seg, xn](Node& node) {
    // Pass 2: rebuild the segment graph from a fresh leaf and pull the
    // output gradient through it. Parameter gradients accumulate directly
    // into the shared parameter nodes (the segment closes over the same
    // Variables); the input gradient lands on the fresh leaf and is routed
    // to the real input node.
    Variable leaf(xn->value, xn->requires_grad, "checkpoint_leaf");
    Variable out = (*seg)(leaf);
    if (out.value().shape() != node.value.shape()) {
      throw std::logic_error("checkpoint: recomputation produced a different shape — "
                             "the segment is not deterministic");
    }
    if (!out.requires_grad()) return;
    out.backward(&node.grad);
    if (xn->requires_grad) xn->accum_grad(leaf.grad());
  };

  return apply_op("checkpoint", std::move(parents), std::move(out_value), std::move(backward));
}

}  // namespace wa::ag
