// Reverse-mode automatic differentiation over wa::Tensor.
//
// The engine is a classic dynamic tape: every operation produces a Variable
// whose Node remembers its parents and a closure that routes the node's
// output gradient into the parents' gradient buffers. Custom fused ops
// (convolutions, the Winograd-aware pipeline, batch-norm, ...) are built with
// apply_op() and hand-written backward closures; all of them are covered by
// finite-difference grad-check tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace wa::ag {

class Variable;

/// Graph node. Owned via shared_ptr by Variables; parents keep the upstream
/// subgraph alive until backward() has run.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily by accum_grad / ensure_grad
  bool requires_grad = false;
  bool grad_allocated = false;
  std::string name;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagate this->grad into parents. May be empty for leaves.
  std::function<void(Node&)> backward_fn;

  /// Add `g` into this node's gradient buffer (allocating zeros first).
  void accum_grad(const Tensor& g);
  /// Make sure the gradient buffer exists (zero-filled).
  Tensor& ensure_grad();
};

/// Lightweight handle to a graph node; copy = share.
class Variable {
 public:
  Variable() = default;
  explicit Variable(Tensor value, bool requires_grad = false, std::string name = "");

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& value() { return node_->value; }
  const Shape& shape() const { return node_->value.shape(); }
  std::int64_t numel() const { return node_->value.numel(); }

  bool requires_grad() const { return node_ && node_->requires_grad; }
  /// Gradient buffer; zeros if backward has not reached this node.
  const Tensor& grad() const;
  void zero_grad();
  /// Leaf update helper used by optimizers: value -= lr * grad (no graph).
  void sgd_step(float lr);

  const std::string& name() const { return node_->name; }
  void set_name(std::string n) { node_->name = std::move(n); }

  std::shared_ptr<Node> node() const { return node_; }

  /// Run reverse-mode autodiff from this (scalar or any-shape) variable.
  /// If `seed` is empty the gradient is seeded with ones (use for losses).
  void backward(const Tensor* seed = nullptr) const;

 private:
  std::shared_ptr<Node> node_;
};

/// Create an interior node: `out_value` computed from `parents`, with
/// `backward` a closure that reads node.grad and accum_grad()s into parents.
/// The node requires grad iff any parent does AND grad mode is enabled
/// (see NoGradGuard); backward is dropped otherwise.
Variable apply_op(std::string name, std::vector<Variable> parents, Tensor out_value,
                  std::function<void(Node&)> backward);

/// Collect every distinct node reachable from `root` in reverse topological
/// order (root first). Exposed for the trainer's graph-size diagnostics.
std::vector<Node*> reverse_topo_order(const Variable& root);

/// True when ops record the tape (the default).
bool grad_mode_enabled();

/// RAII scope that disables tape recording: ops built inside return plain
/// values with no parents or backward closures. This is what gradient
/// checkpointing (checkpoint.hpp) uses for its first, memory-free forward
/// pass; it is also useful for cheap evaluation passes.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Size of the retained autograd graph reachable from `root`: node count and
/// bytes held by values/gradients. The basis of the checkpointing tests —
/// the paper (§7) "had to rely on gradient checkpointing to lower the
/// memory peak" when training Winograd-aware layers.
struct GraphStats {
  std::size_t nodes = 0;
  std::int64_t value_bytes = 0;
  std::int64_t grad_bytes = 0;
};
GraphStats graph_stats(const Variable& root);

}  // namespace wa::ag
