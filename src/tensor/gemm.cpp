#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "backend/simd/kernel_table.hpp"

namespace wa {

namespace {

// Panel sizes tuned for small L1/L2; correctness does not depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Element (r, c) of op(A) where op(A) is [m_rows x k_cols]; the backing
// storage is [m_rows x k_cols] row-major when !trans, [k_cols x m_rows]
// row-major when trans.
inline float load(const float* p, bool trans, std::int64_t m_rows, std::int64_t k_cols,
                  std::int64_t r, std::int64_t c) {
  return trans ? p[c * m_rows + r] : p[r * k_cols + c];
}

// Core kernel on a packed row-major A-panel [mb x K] and row-major B [K x N]:
// dispatched through the backend kernel table (scalar reference or the FMA
// micro-kernel on AVX2 hosts).
inline void gemm_packed_nn(std::int64_t mb, std::int64_t n, std::int64_t k, float alpha,
                           const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                           float beta, float* c, std::int64_t ldc) {
  backend::simd::kernels().gemm_f32_packed_nn(mb, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace

void gemm_f32(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              float alpha, const float* a, const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;

  // Degenerate reduction: C = beta * C on every path (the general path's
  // k-loop would otherwise never run and leave C untouched).
  if (k <= 0) {
#pragma omp parallel for schedule(static) if (m * n >= 4096)
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      if (beta == 0.F) {
        std::fill(crow, crow + n, 0.F);
      } else if (beta != 1.F) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }

  // Row-panel size: cap at kBlockM for cache locality but shrink so every
  // thread gets at least one panel (a fixed 64-row panel would serialise any
  // m in [8, 64) — exactly the out-channels-per-group range of the Winograd
  // GEMMs).
  std::int64_t threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  const std::int64_t panel =
      std::clamp((m + threads - 1) / threads, std::int64_t{8}, kBlockM);

  // Fast path: no transposes. Iterate k in the middle so B rows stream.
  if (!trans_a && !trans_b) {
#pragma omp parallel for schedule(static) if (m >= 8)
    for (std::int64_t i0 = 0; i0 < m; i0 += panel) {
      const std::int64_t mb = std::min(panel, m - i0);
      gemm_packed_nn(mb, n, k, alpha, a + i0 * k, k, b, n, beta, c + i0 * n, n);
    }
    return;
  }

  // General path: pack op(A) panel and op(B) into temporaries per block.
  // Work is distributed over flattened (row-panel, column-panel) blocks so
  // small-m GEMMs still parallelise across columns.
  const std::int64_t mblocks = (m + panel - 1) / panel;
  const std::int64_t nblocks = (n + kBlockN - 1) / kBlockN;
#pragma omp parallel if (mblocks * nblocks >= 2)
  {
    std::vector<float> apack(static_cast<std::size_t>(panel * kBlockK));
    std::vector<float> bpack;
    if (trans_b) bpack.resize(static_cast<std::size_t>(kBlockK * kBlockN));

#pragma omp for schedule(static)
    for (std::int64_t blk = 0; blk < mblocks * nblocks; ++blk) {
      const std::int64_t i0 = (blk / nblocks) * panel;
      const std::int64_t j0 = (blk % nblocks) * kBlockN;
      const std::int64_t mb = std::min(panel, m - i0);
      const std::int64_t nb = std::min(kBlockN, n - j0);
      for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t kb = std::min(kBlockK, k - k0);
        // Pack op(A)[i0:i0+mb, k0:k0+kb] row-major.
        for (std::int64_t i = 0; i < mb; ++i) {
          for (std::int64_t kk = 0; kk < kb; ++kk) {
            apack[static_cast<std::size_t>(i * kb + kk)] =
                load(a, trans_a, m, k, i0 + i, k0 + kk);
          }
        }
        const float* bptr;
        std::int64_t ldb;
        if (!trans_b) {
          bptr = b + k0 * n + j0;
          ldb = n;
        } else {
          // Pack op(B)[k0:k0+kb, j0:j0+nb] row-major from B stored [N,K].
          for (std::int64_t kk = 0; kk < kb; ++kk) {
            for (std::int64_t j = 0; j < nb; ++j) {
              bpack[static_cast<std::size_t>(kk * nb + j)] = b[(j0 + j) * k + (k0 + kk)];
            }
          }
          bptr = bpack.data();
          ldb = nb;
        }
        const float eff_beta = (k0 == 0) ? beta : 1.F;
        gemm_packed_nn(mb, nb, kb, alpha, apack.data(), kb, bptr, ldb, eff_beta,
                       c + i0 * n + j0, n);
      }
    }
  }
}

void gemm_batched_f32(bool trans_a, bool trans_b, std::int64_t batch, std::int64_t m,
                      std::int64_t n, std::int64_t k, const float* a, std::int64_t stride_a,
                      const float* b, std::int64_t stride_b, float* c, std::int64_t stride_c) {
#pragma omp parallel for schedule(static) if (batch >= 2)
  for (std::int64_t i = 0; i < batch; ++i) {
    gemm_f32(trans_a, trans_b, m, n, k, 1.F, a + i * stride_a, b + i * stride_b, 0.F,
             c + i * stride_c);
  }
}

}  // namespace wa
