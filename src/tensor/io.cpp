#include "tensor/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace wa {

namespace {
constexpr std::uint32_t kTensorMagic = 0x5741'5431;  // "WAT1"
constexpr std::uint32_t kMapMagic = 0x5741'4d31;     // "WAM1"

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor io: truncated stream");
  return v;
}
}  // namespace

void save_tensor(std::ostream& os, const Tensor& t) {
  write_pod(os, kTensorMagic);
  write_pod(os, static_cast<std::int64_t>(t.dim()));
  for (std::int64_t d = 0; d < t.dim(); ++d) write_pod(os, t.size(d));
  os.write(reinterpret_cast<const char*>(t.raw()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor load_tensor(std::istream& is) {
  if (read_pod<std::uint32_t>(is) != kTensorMagic) {
    throw std::runtime_error("tensor io: bad tensor magic");
  }
  const auto rank = read_pod<std::int64_t>(is);
  if (rank < 0 || rank > 16) throw std::runtime_error("tensor io: implausible rank");
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) d = read_pod<std::int64_t>(is);
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("tensor io: truncated tensor body");
  return t;
}

void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& m) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tensor io: cannot open for write: " + path);
  write_pod(os, kMapMagic);
  write_pod(os, static_cast<std::int64_t>(m.size()));
  for (const auto& [name, tensor] : m) {
    write_pod(os, static_cast<std::int64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    save_tensor(os, tensor);
  }
}

std::map<std::string, Tensor> load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tensor io: cannot open for read: " + path);
  if (read_pod<std::uint32_t>(is) != kMapMagic) {
    throw std::runtime_error("tensor io: bad map magic in " + path);
  }
  const auto count = read_pod<std::int64_t>(is);
  std::map<std::string, Tensor> m;
  for (std::int64_t i = 0; i < count; ++i) {
    const auto len = read_pod<std::int64_t>(is);
    std::string name(static_cast<std::size_t>(len), '\0');
    is.read(name.data(), len);
    m.emplace(std::move(name), load_tensor(is));
  }
  return m;
}

}  // namespace wa
