#include "tensor/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace wa {

namespace {
constexpr std::uint32_t kTensorMagic = 0x5741'5431;  // "WAT1"
constexpr std::uint32_t kMapMagic = 0x5741'4d31;     // "WAM1"
}  // namespace

void save_string(std::ostream& os, const std::string& s) {
  save_pod(os, static_cast<std::int64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string load_string(std::istream& is) {
  const auto len = load_pod<std::int64_t>(is);
  if (len < 0 || len > (std::int64_t{1} << 32)) {
    throw std::runtime_error("tensor io: implausible string length");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  is.read(s.data(), len);
  if (!is) throw std::runtime_error("tensor io: truncated string");
  return s;
}

void save_tensor(std::ostream& os, const Tensor& t) {
  save_pod(os, kTensorMagic);
  save_pod(os, static_cast<std::int64_t>(t.dim()));
  for (std::int64_t d = 0; d < t.dim(); ++d) save_pod(os, t.size(d));
  os.write(reinterpret_cast<const char*>(t.raw()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor load_tensor(std::istream& is) {
  if (load_pod<std::uint32_t>(is) != kTensorMagic) {
    throw std::runtime_error("tensor io: bad tensor magic");
  }
  const auto rank = load_pod<std::int64_t>(is);
  if (rank < 0 || rank > 16) throw std::runtime_error("tensor io: implausible rank");
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) d = load_pod<std::int64_t>(is);
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("tensor io: truncated tensor body");
  return t;
}

void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& m) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tensor io: cannot open for write: " + path);
  save_pod(os, kMapMagic);
  save_pod(os, static_cast<std::int64_t>(m.size()));
  for (const auto& [name, tensor] : m) {
    save_string(os, name);
    save_tensor(os, tensor);
  }
}

std::map<std::string, Tensor> load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tensor io: cannot open for read: " + path);
  if (load_pod<std::uint32_t>(is) != kMapMagic) {
    throw std::runtime_error("tensor io: bad map magic in " + path);
  }
  const auto count = load_pod<std::int64_t>(is);
  std::map<std::string, Tensor> m;
  for (std::int64_t i = 0; i < count; ++i) {
    std::string name = load_string(is);
    m.emplace(std::move(name), load_tensor(is));
  }
  return m;
}

}  // namespace wa
