// Minimal binary (de)serialization for tensors and named tensor maps.
// Used for model checkpoints (e.g. the Fig. 6 adaptation experiment trains
// from a saved direct-convolution model) and as the substrate of the .wam
// compiled-model artifact (src/serve/artifact.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "tensor/tensor.hpp"

namespace wa {

/// Raw little-endian POD write/read. load_pod throws std::runtime_error on a
/// short read so truncated streams fail loudly at the exact field.
template <typename T>
void save_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T load_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor io: truncated stream");
  return v;
}

/// Length-prefixed (int64) string.
void save_string(std::ostream& os, const std::string& s);
std::string load_string(std::istream& is);

/// Length-prefixed (int64) vector of trivially-copyable elements.
template <typename T>
void save_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  save_pod(os, static_cast<std::int64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> load_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = load_pod<std::int64_t>(is);
  if (n < 0 || n > (std::int64_t{1} << 40)) {
    throw std::runtime_error("tensor io: implausible vector length");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!is) throw std::runtime_error("tensor io: truncated vector body");
  return v;
}

/// Write a single tensor: magic, rank, dims (int64 little-endian), raw fp32.
void save_tensor(std::ostream& os, const Tensor& t);
Tensor load_tensor(std::istream& is);

/// Named tensor map (checkpoint). Keys are parameter paths like
/// "layer3.conv1.weight".
void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& m);
std::map<std::string, Tensor> load_tensor_map(const std::string& path);

}  // namespace wa
