// Minimal binary (de)serialization for tensors and named tensor maps.
// Used for model checkpoints (e.g. the Fig. 6 adaptation experiment trains
// from a saved direct-convolution model).
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace wa {

/// Write a single tensor: magic, rank, dims (int64 little-endian), raw fp32.
void save_tensor(std::ostream& os, const Tensor& t);
Tensor load_tensor(std::istream& is);

/// Named tensor map (checkpoint). Keys are parameter paths like
/// "layer3.conv1.weight".
void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& m);
std::map<std::string, Tensor> load_tensor_map(const std::string& path);

}  // namespace wa
