// Dense row-major FP32 tensor: the storage type used across the library.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace wa {

/// Dense row-major single-precision tensor with value semantics.
///
/// Copying a Tensor deep-copies its storage; moves are cheap. All shape and
/// bounds violations throw std::invalid_argument / std::out_of_range so that
/// misuse is caught early (the library is used for research experiments, not
/// hot-path serving). Heavy inner loops (GEMM, convolution kernels) live in
/// gemm.hpp / backend and operate on raw spans obtained from data().
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape, float fill = 0.F)
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(wa::numel(shape_)), fill) {}

  Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)), data_(std::move(values)) {
    if (static_cast<std::int64_t>(data_.size()) != wa::numel(shape_)) {
      throw std::invalid_argument("Tensor: value count " + std::to_string(data_.size()) +
                                  " does not match shape " + wa::to_string(shape_));
    }
  }

  // ---- factories ----------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.F); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.F); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// Standard-normal entries scaled by stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.F);
  /// Uniform entries in [lo, hi).
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.F, float hi = 1.F);
  /// 0, 1, 2, ... n-1 as a 1-D tensor.
  static Tensor arange(std::int64_t n);
  /// 2-D tensor from nested initializer lists (rows must be equal length).
  static Tensor from_rows(std::initializer_list<std::initializer_list<float>> rows);

  // ---- shape accessors ----------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  // ---- element access -----------------------------------------------------
  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Steal the underlying storage, leaving the tensor empty. The serving
  /// frontend recycles request/response slabs through this (the vector's
  /// capacity survives the round trip back into the slab pool).
  std::vector<float> take_data() && {
    shape_.clear();
    return std::move(data_);
  }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& at(std::int64_t i) { return data_.at(static_cast<std::size_t>(i)); }
  float at(std::int64_t i) const { return data_.at(static_cast<std::size_t>(i)); }

  float& operator()(std::int64_t i, std::int64_t j) { return data_[idx2(i, j)]; }
  float operator()(std::int64_t i, std::int64_t j) const { return data_[idx2(i, j)]; }
  float& operator()(std::int64_t i, std::int64_t j, std::int64_t k) { return data_[idx3(i, j, k)]; }
  float operator()(std::int64_t i, std::int64_t j, std::int64_t k) const { return data_[idx3(i, j, k)]; }
  float& operator()(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[idx4(n, c, h, w)];
  }
  float operator()(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[idx4(n, c, h, w)];
  }

  // ---- shape manipulation (all produce fresh tensors; storage is copied) --
  /// Reinterpret with a new shape of identical element count.
  Tensor reshape(Shape new_shape) const;
  /// 2-D transpose.
  Tensor transposed() const;
  /// Concatenate along axis 0 or 1 (2-D) or axis 1 (4-D, channels).
  static Tensor concat(const std::vector<Tensor>& parts, std::int64_t axis);
  /// Slice along axis 0: rows [begin, end).
  Tensor slice0(std::int64_t begin, std::int64_t end) const;

  // ---- elementwise arithmetic ---------------------------------------------
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);
  Tensor operator+(const Tensor& o) const;
  Tensor operator-(const Tensor& o) const;
  /// Hadamard (elementwise) product.
  Tensor operator*(const Tensor& o) const;
  Tensor operator*(float s) const;
  /// Apply `f` to each element in place; returns *this for chaining.
  Tensor& apply(const std::function<float(float)>& f);
  /// Out-of-place map.
  Tensor map(const std::function<float(float)>& f) const;
  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  // ---- reductions ---------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Largest absolute value (0 for empty tensors).
  float abs_max() const;
  /// Index of the maximum element (first on ties).
  std::int64_t argmax() const;
  /// Frobenius norm.
  float norm() const;

  /// Max absolute elementwise difference; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);
  /// True if all elements differ by at most `tol`.
  static bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5F);

  std::string to_string(int max_per_axis = 8) const;

 private:
  std::size_t idx2(std::int64_t i, std::int64_t j) const;
  std::size_t idx3(std::int64_t i, std::int64_t j, std::int64_t k) const;
  std::size_t idx4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

/// C = A x B for 2-D tensors ([M,K] x [K,N] -> [M,N]).
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T x B ([K,M]^T x [K,N] -> [M,N]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A x B^T ([M,K] x [N,K]^T -> [M,N]).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

}  // namespace wa
