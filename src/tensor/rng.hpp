// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>

namespace wa {

/// Seeded Mersenne-Twister wrapper. All stochastic components in the library
/// (weight init, data generation, augmentation, NAS path sampling) draw from
/// an explicitly passed Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : gen_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.F, float hi = 1.F) {
    return std::uniform_real_distribution<float>(lo, hi)(gen_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.F, float stddev = 1.F) {
    return std::normal_distribution<float>(mean, stddev)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Sample an index from an (unnormalised, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Process-wide default generator, used only where plumbing a generator
/// through is not worth it (e.g. quick examples). Tests and benches pass
/// explicit Rng instances.
Rng& global_rng();

/// Reseed the global generator (affects global_rng() only).
void seed_global_rng(std::uint64_t seed);

}  // namespace wa
