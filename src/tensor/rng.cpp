#include "tensor/rng.hpp"

namespace wa {

namespace {
Rng& mutable_global() {
  static Rng rng(0x5eed);
  return rng;
}
}  // namespace

Rng& global_rng() { return mutable_global(); }

void seed_global_rng(std::uint64_t seed) { mutable_global() = Rng(seed); }

}  // namespace wa
