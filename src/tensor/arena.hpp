// Reusable per-thread scratch memory for inference hot paths.
//
// The deployment kernels (scatter -> batched GEMM -> gather) used to allocate
// fresh std::vector / Tensor storage on every call; at serving batch sizes
// the allocator traffic dominates the small-tile transforms. A ScratchArena
// is a bump allocator whose capacity persists across calls: the first forward
// pays for the pages, every later forward reuses them.
//
// Usage contract: open a Scope, alloc<> freely inside it, and let the Scope
// rewind everything on exit. Pointers obtained inside a Scope are invalid
// after it closes. Scopes nest (inner rewinds to its own mark). The
// per-thread arena from for_thread() makes OpenMP workers allocation-free
// without sharing or locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace wa {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialised storage for n elements of T, 64-byte aligned.
  template <typename T>
  T* alloc(std::int64_t n) {
    static_assert(alignof(T) <= kAlign);
    return reinterpret_cast<T*>(
        alloc_bytes(static_cast<std::size_t>(n < 0 ? 0 : n) * sizeof(T)));
  }

  /// Bytes currently reserved across all blocks (persists over rewinds).
  std::size_t capacity() const;
  /// Free every block (capacity drops to zero; no Scope may be open).
  void release();

  /// RAII frame: rewinds the arena to its construction point on destruction.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena) : arena_(arena), block_(arena.cur_block_), offset_(arena.cur_offset_) {}
    ~Scope() { arena_.rewind(block_, offset_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t offset_;
  };

  /// The calling thread's arena (one per thread, created on first use).
  static ScratchArena& for_thread();

 private:
  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kMinBlock = std::size_t{1} << 20;  // 1 MiB

  struct Block {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;  // 64-byte aligned start inside storage
    std::size_t size = 0;
  };

  static Block make_block(std::size_t size);
  std::byte* alloc_bytes(std::size_t bytes);
  void rewind(std::size_t block, std::size_t offset);

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;
  std::size_t cur_offset_ = 0;
};

}  // namespace wa
