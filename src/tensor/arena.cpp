#include "tensor/arena.hpp"

#include <algorithm>

namespace wa {

namespace {

std::size_t align_up(std::size_t v, std::size_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

ScratchArena::Block ScratchArena::make_block(std::size_t size) {
  Block b;
  b.storage = std::make_unique<std::byte[]>(size + kAlign);
  b.base = reinterpret_cast<std::byte*>(
      align_up(reinterpret_cast<std::size_t>(b.storage.get()), kAlign));
  b.size = size;
  return b;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

void ScratchArena::release() {
  blocks_.clear();
  cur_block_ = 0;
  cur_offset_ = 0;
}

std::byte* ScratchArena::alloc_bytes(std::size_t bytes) {
  bytes = align_up(std::max<std::size_t>(bytes, 1), kAlign);
  while (true) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      if (b.size - cur_offset_ >= bytes) {
        std::byte* p = b.base + cur_offset_;
        cur_offset_ += bytes;
        return p;
      }
      if (cur_block_ + 1 < blocks_.size() && blocks_[cur_block_ + 1].size >= bytes) {
        ++cur_block_;
        cur_offset_ = 0;
        continue;
      }
      // The remaining blocks are too small for this request and hold no live
      // allocations (they sit past the bump frontier): replace them with one
      // block big enough that the next pass over the same shapes stays in it.
      blocks_.resize(cur_block_ + 1);
    }
    blocks_.push_back(make_block(std::max({bytes, kMinBlock, capacity() * 2})));
    cur_block_ = blocks_.size() - 1;
    cur_offset_ = 0;
  }
}

void ScratchArena::rewind(std::size_t block, std::size_t offset) {
  cur_block_ = block;
  cur_offset_ = offset;
  // Fully rewound with fragmented blocks: coalesce so future passes bump
  // through one contiguous region instead of hopping blocks.
  if (cur_block_ == 0 && cur_offset_ == 0 && blocks_.size() > 1) {
    const std::size_t total = capacity();
    blocks_.clear();
    blocks_.push_back(make_block(total));
  }
}

ScratchArena& ScratchArena::for_thread() {
  static thread_local ScratchArena arena;
  return arena;
}

}  // namespace wa
