// Shape utilities for dense row-major tensors.
#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace wa {

/// Dimensions of a dense row-major tensor. Index 0 is the outermost axis.
using Shape = std::vector<std::int64_t>;

/// Total number of elements described by a shape. Empty shape => scalar (1).
/// Throws on negative dims and on products that exceed int64 — shapes can
/// arrive from untrusted wire bytes, so the product must never wrap.
inline std::int64_t numel(const Shape& s) {
  std::int64_t n = 1;
  for (auto d : s) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    if (d != 0 && n > std::numeric_limits<std::int64_t>::max() / d) {
      throw std::overflow_error("shape element count overflows int64");
    }
    n *= d;
  }
  return n;
}

/// Row-major strides (in elements) for a shape.
inline Shape strides_for(const Shape& s) {
  Shape st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i) {
    st[static_cast<std::size_t>(i)] =
        st[static_cast<std::size_t>(i) + 1] * s[static_cast<std::size_t>(i) + 1];
  }
  return st;
}

inline std::string to_string(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << ']';
  return os.str();
}

inline bool same_shape(const Shape& a, const Shape& b) { return a == b; }

/// Throws std::invalid_argument with a readable message if shapes differ.
inline void check_same_shape(const Shape& a, const Shape& b, const char* what) {
  if (a != b) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                to_string(a) + " vs " + to_string(b));
  }
}

}  // namespace wa
