// Single-precision GEMM kernels used by every convolution lowering.
#pragma once

#include <cstdint>

namespace wa {

/// C = alpha * op(A) * op(B) + beta * C.
///
/// op(A) is [M,K]; A itself is stored row-major as [M,K] when !trans_a and
/// [K,M] when trans_a (likewise for B with [K,N]). C is row-major [M,N].
/// The kernel is cache-blocked and parallelised with OpenMP over row panels;
/// it is deliberately dependency-free (no BLAS) so the whole repo builds
/// offline, while staying fast enough to train the scaled-down experiments.
void gemm_f32(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              float alpha, const float* a, const float* b, float beta, float* c);

/// Strided batched GEMM: for each batch i, C_i = op(A_i) * op(B_i).
/// A, B, C advance by the given element strides per batch.
void gemm_batched_f32(bool trans_a, bool trans_b, std::int64_t batch, std::int64_t m,
                      std::int64_t n, std::int64_t k, const float* a, std::int64_t stride_a,
                      const float* b, std::int64_t stride_b, float* c, std::int64_t stride_c);

}  // namespace wa
