#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/gemm.hpp"

namespace wa {

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(0.F, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_rows(std::initializer_list<std::initializer_list<float>> rows) {
  const auto r = static_cast<std::int64_t>(rows.size());
  const auto c = r > 0 ? static_cast<std::int64_t>(rows.begin()->size()) : 0;
  Tensor t(Shape{r, c});
  std::int64_t i = 0;
  for (const auto& row : rows) {
    if (static_cast<std::int64_t>(row.size()) != c) {
      throw std::invalid_argument("from_rows: ragged rows");
    }
    std::int64_t j = 0;
    for (float v : row) t(i, j++) = v;
    ++i;
  }
  return t;
}

std::int64_t Tensor::size(std::int64_t axis) const {
  if (axis < 0) axis += dim();
  if (axis < 0 || axis >= dim()) {
    throw std::out_of_range("Tensor::size: axis " + std::to_string(axis) + " for shape " +
                            wa::to_string(shape_));
  }
  return shape_[static_cast<std::size_t>(axis)];
}

std::size_t Tensor::idx2(std::int64_t i, std::int64_t j) const {
  return static_cast<std::size_t>(i * shape_[1] + j);
}
std::size_t Tensor::idx3(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k);
}
std::size_t Tensor::idx4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  return static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w);
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (wa::numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: cannot view " + wa::to_string(shape_) + " as " +
                                wa::to_string(new_shape));
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::transposed() const {
  if (dim() != 2) throw std::invalid_argument("transposed: expects 2-D tensor");
  const std::int64_t r = shape_[0], c = shape_[1];
  Tensor t(Shape{c, r});
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Tensor Tensor::concat(const std::vector<Tensor>& parts, std::int64_t axis) {
  if (parts.empty()) throw std::invalid_argument("concat: no tensors");
  const auto& first = parts.front();
  Shape out_shape = first.shape();
  if (axis < 0 || axis >= first.dim()) throw std::invalid_argument("concat: bad axis");
  std::int64_t total = 0;
  for (const auto& p : parts) {
    if (p.dim() != first.dim()) throw std::invalid_argument("concat: rank mismatch");
    for (std::int64_t d = 0; d < p.dim(); ++d) {
      if (d != axis && p.shape()[static_cast<std::size_t>(d)] != first.shape()[static_cast<std::size_t>(d)]) {
        throw std::invalid_argument("concat: shape mismatch off-axis");
      }
    }
    total += p.shape()[static_cast<std::size_t>(axis)];
  }
  out_shape[static_cast<std::size_t>(axis)] = total;
  Tensor out(out_shape);

  // Treat the tensor as [outer, axis, inner] and copy contiguous inner runs.
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < axis; ++d) outer *= first.shape()[static_cast<std::size_t>(d)];
  for (std::int64_t d = axis + 1; d < first.dim(); ++d) inner *= first.shape()[static_cast<std::size_t>(d)];

  std::int64_t axis_off = 0;
  for (const auto& p : parts) {
    const std::int64_t a = p.shape()[static_cast<std::size_t>(axis)];
    for (std::int64_t o = 0; o < outer; ++o) {
      const float* src = p.raw() + o * a * inner;
      float* dst = out.raw() + (o * total + axis_off) * inner;
      std::copy(src, src + a * inner, dst);
    }
    axis_off += a;
  }
  return out;
}

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  if (dim() < 1 || begin < 0 || end > shape_[0] || begin > end) {
    throw std::out_of_range("slice0: range [" + std::to_string(begin) + ", " + std::to_string(end) +
                            ") for shape " + wa::to_string(shape_));
  }
  Shape s = shape_;
  s[0] = end - begin;
  const std::int64_t inner = numel() / std::max<std::int64_t>(shape_[0], 1);
  Tensor out(s);
  std::copy(raw() + begin * inner, raw() + end * inner, out.raw());
  return out;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(shape_, o.shape_, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  check_same_shape(shape_, o.shape_, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor Tensor::operator+(const Tensor& o) const {
  Tensor t = *this;
  t += o;
  return t;
}
Tensor Tensor::operator-(const Tensor& o) const {
  Tensor t = *this;
  t -= o;
  return t;
}
Tensor Tensor::operator*(const Tensor& o) const {
  check_same_shape(shape_, o.shape_, "operator*");
  Tensor t = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) t.data_[i] *= o.data_[i];
  return t;
}
Tensor Tensor::operator*(float s) const {
  Tensor t = *this;
  t *= s;
  return t;
}

Tensor& Tensor::apply(const std::function<float(float)>& f) {
  for (auto& v : data_) v = f(v);
  return *this;
}

Tensor Tensor::map(const std::function<float(float)>& f) const {
  Tensor t = *this;
  t.apply(f);
  return t;
}

float Tensor::sum() const {
  double acc = 0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}
float Tensor::mean() const { return empty() ? 0.F : sum() / static_cast<float>(numel()); }
float Tensor::min() const { return data_.empty() ? 0.F : *std::min_element(data_.begin(), data_.end()); }
float Tensor::max() const { return data_.empty() ? 0.F : *std::max_element(data_.begin(), data_.end()); }

float Tensor::abs_max() const {
  float m = 0.F;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::invalid_argument("argmax: empty tensor");
  return static_cast<std::int64_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

float Tensor::norm() const {
  double acc = 0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a.shape_, b.shape_, "max_abs_diff");
  float m = 0.F;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Tensor::allclose(const Tensor& a, const Tensor& b, float tol) {
  return a.shape_ == b.shape_ && max_abs_diff(a, b) <= tol;
}

std::string Tensor::to_string(int max_per_axis) const {
  std::ostringstream os;
  os << "Tensor" << wa::to_string(shape_) << " {";
  const std::int64_t show = std::min<std::int64_t>(numel(), max_per_axis);
  for (std::int64_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > show) os << ", ...";
  os << "}";
  return os.str();
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " + wa::to_string(a.shape()) + " x " +
                                wa::to_string(b.shape()));
  }
  Tensor c(Shape{a.size(0), b.size(1)});
  gemm_f32(false, false, a.size(0), b.size(1), a.size(1), 1.F, a.raw(), b.raw(), 0.F, c.raw());
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.dim() != 2 || b.dim() != 2 || a.size(0) != b.size(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes " + wa::to_string(a.shape()) +
                                "^T x " + wa::to_string(b.shape()));
  }
  Tensor c(Shape{a.size(1), b.size(1)});
  gemm_f32(true, false, a.size(1), b.size(1), a.size(0), 1.F, a.raw(), b.raw(), 0.F, c.raw());
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes " + wa::to_string(a.shape()) +
                                " x " + wa::to_string(b.shape()) + "^T");
  }
  Tensor c(Shape{a.size(0), b.size(0)});
  gemm_f32(false, true, a.size(0), b.size(0), a.size(1), 1.F, a.raw(), b.raw(), 0.F, c.raw());
  return c;
}

}  // namespace wa
