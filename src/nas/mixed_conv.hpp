// The wiNAS over-parameterised layer: one candidate op per convolution
// algorithm (and, for wiNAS-WA-Q, per bit-width), with architecture
// parameters deciding which gets sampled.
#pragma once

#include <memory>
#include <vector>

#include "latency/cost_model.hpp"
#include "models/conv_builder.hpp"
#include "nn/conv_config.hpp"
#include "nn/module.hpp"

namespace wa::nas {

/// One entry of the per-layer search space (paper Fig. 3).
struct Candidate {
  nn::ConvAlgo algo = nn::ConvAlgo::kIm2row;
  quant::QuantSpec qspec{32};
  bool flex = false;
  double latency_ms = 0;  // cost-model latency for this layer's geometry

  std::string to_string() const {
    return nn::to_string(algo) + "@" + qspec.to_string();
  }
};

/// Path-sampled mixture of candidate convolutions (ProxylessNAS-style).
///
/// Weight phase: exactly one sampled path executes (sample_path + forward).
/// Arch phase: two paths are sampled and combined with softmax-renormalised
/// weights p̃ so the architecture parameters receive gradients while at most
/// two candidates are materialised per batch — the trick that lets
/// ProxylessNAS search the whole network on one device.
class MixedConv2d : public nn::Module {
 public:
  MixedConv2d(const nn::Conv2dOptions& base, std::vector<Candidate> candidates, Rng& rng);

  enum class Mode { kSingle, kPair };
  void set_mode(Mode m) { mode_ = m; }

  /// Sample the active path (kSingle) or pair (kPair) from softmax(alpha).
  void sample(Rng& rng);
  void set_active(std::size_t idx);
  std::size_t active() const { return active_; }

  ag::Variable forward(const ag::Variable& x) override;

  const std::vector<Candidate>& candidates() const { return candidates_; }
  ag::Variable alpha() { return alpha_; }
  std::vector<double> probabilities() const;
  /// E{latency} = Σ_i p_i · latency_i as a differentiable scalar Variable
  /// (gradient: p_i (lat_i − E), the softmax-expectation rule).
  ag::Variable expected_latency();
  /// argmax over alpha — the derived architecture choice.
  std::size_t best() const;

 private:
  std::vector<Candidate> candidates_;
  std::vector<std::shared_ptr<nn::Module>> ops_;
  ag::Variable alpha_;  // [num_candidates] architecture parameters
  Mode mode_ = Mode::kSingle;
  std::size_t active_ = 0;
  std::size_t pair_a_ = 0, pair_b_ = 1;
};

/// out = p̃_a · a + p̃_b · b where (p̃_a, p̃_b) is the softmax of
/// (alpha[ia], alpha[ib]) renormalised over the pair. Gradients flow to a, b
/// and alpha (only elements ia, ib).
ag::Variable weighted_pair(const ag::Variable& a, const ag::Variable& b,
                           const ag::Variable& alpha, std::size_t ia, std::size_t ib);

/// Differentiable Σ_i softmax(alpha)_i * value_i (scalar output).
ag::Variable softmax_expectation(const ag::Variable& alpha, std::vector<double> values);

/// The candidate list used by wiNAS-WA (fixed bit-width) — im2row plus
/// F2/F4/F6 winograd-aware layers — and wiNAS-WA-Q (crossed with
/// {FP32, INT16, INT8}).
std::vector<Candidate> winas_wa_candidates(const quant::QuantSpec& spec);
std::vector<Candidate> winas_wa_q_candidates();

}  // namespace wa::nas
