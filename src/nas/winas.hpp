// wiNAS: Winograd-aware neural architecture search (paper §4).
//
// Takes a fixed macro-architecture (ResNet-18 here, as in the paper),
// replaces every searchable 3x3 convolution with a MixedConv2d over
// {im2row, WA-F2, WA-F4, WA-F6} (x bit-widths for wiNAS-WA-Q) and runs the
// two-stage alternating optimisation:
//
//   weight step:  L = CE          (SGD + Nesterov momentum, one sampled path)
//   arch step:    L = CE + λ1‖a‖² + λ2·E{latency}
//                 (Adam with β1 = 0, two sampled paths, latencies from the
//                  Cortex-A73/A53 cost model)
//
// Deriving the architecture takes argmax(alpha) per layer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "latency/cost_model.hpp"
#include "models/resnet.hpp"
#include "nas/mixed_conv.hpp"
#include "train/optimizer.hpp"

namespace wa::nas {

struct WinasOptions {
  /// Search space: false = wiNAS-WA (fixed bit-width), true = wiNAS-WA-Q.
  bool search_quant = false;
  quant::QuantSpec fixed_spec{8};

  float lambda1 = 1e-3F;  // ‖a‖² regulariser
  float lambda2 = 0.05F;  // latency pressure; the paper sweeps 0.1 .. 1e-3

  int epochs = 4;            // paper: 100 (scaled down; env-overridable in benches)
  std::int64_t batch_size = 32;
  float weight_lr = 0.05F;   // SGD + Nesterov
  float arch_lr = 5e-3F;     // Adam, beta1 = 0
  std::uint64_t seed = 7;

  float width_mult = 0.25F;
  latency::CoreSpec core = latency::cortex_a73();
  bool verbose = false;
};

struct LayerChoice {
  std::string layer;
  Candidate chosen;
  std::vector<double> probabilities;
};

struct SearchResult {
  std::vector<LayerChoice> choices;
  /// Per-layer override table, directly usable with models::override_builder
  /// to instantiate + retrain the found architecture.
  std::map<std::string, models::LayerOverride> assignment;
  double expected_latency_ms = 0;  // cost-model latency of the derived arch
  float final_val_acc = 0;         // accuracy of the supernet (sampled argmax)
};

class WinasSearch {
 public:
  WinasSearch(const WinasOptions& opts, const data::Dataset& train_set,
              const data::Dataset& val_set);

  /// Run the alternating search and derive the architecture.
  SearchResult run();

  /// The supernet (exposed for tests).
  models::ResNet18& supernet() { return *net_; }
  const std::vector<std::shared_ptr<MixedConv2d>>& mixed_layers() const { return mixed_; }

 private:
  void set_mode(MixedConv2d::Mode mode);
  void sample_all(Rng& rng);

  WinasOptions opts_;
  const data::Dataset& train_;
  const data::Dataset& val_;
  Rng rng_;
  std::shared_ptr<models::ResNet18> net_;
  std::vector<std::shared_ptr<MixedConv2d>> mixed_;
  std::vector<std::string> mixed_names_;
};

/// Pretty-print a found architecture in the style of the paper's Fig. 9
/// (one "algo bits" row per layer).
std::string format_architecture(const SearchResult& result);

}  // namespace wa::nas
