#include "nas/mixed_conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/wa_conv2d.hpp"

namespace wa::nas {

ag::Variable weighted_pair(const ag::Variable& a, const ag::Variable& b,
                           const ag::Variable& alpha, std::size_t ia, std::size_t ib) {
  check_same_shape(a.shape(), b.shape(), "weighted_pair");
  const float za = alpha.value().at(static_cast<std::int64_t>(ia));
  const float zb = alpha.value().at(static_cast<std::int64_t>(ib));
  const float mx = std::max(za, zb);
  const float ea = std::exp(za - mx), eb = std::exp(zb - mx);
  const float pa = ea / (ea + eb), pb = 1.F - pa;

  Tensor out = a.value() * pa + b.value() * pb;
  auto an = a.node();
  auto bn = b.node();
  auto aln = alpha.node();
  return ag::apply_op("weighted_pair", {a, b, alpha}, std::move(out),
                      [an, bn, aln, ia, ib, pa, pb](ag::Node& n) {
                        if (an->requires_grad) an->accum_grad(n.grad * pa);
                        if (bn->requires_grad) bn->accum_grad(n.grad * pb);
                        if (aln->requires_grad) {
                          // d out / d z_a = p_a p_b (a − b); inner-product with n.grad.
                          double dot_a = 0, dot_b = 0;
                          auto g = n.grad.data();
                          auto av = an->value.data();
                          auto bv = bn->value.data();
                          for (std::size_t i = 0; i < g.size(); ++i) {
                            dot_a += static_cast<double>(g[i]) * av[i];
                            dot_b += static_cast<double>(g[i]) * bv[i];
                          }
                          const float dz = static_cast<float>((dot_a - dot_b) * pa * pb);
                          Tensor da = Tensor::zeros(aln->value.shape());
                          da.at(static_cast<std::int64_t>(ia)) = dz;
                          da.at(static_cast<std::int64_t>(ib)) = -dz;
                          aln->accum_grad(da);
                        }
                      });
}

ag::Variable softmax_expectation(const ag::Variable& alpha, std::vector<double> values) {
  const auto n = alpha.numel();
  if (static_cast<std::int64_t>(values.size()) != n) {
    throw std::invalid_argument("softmax_expectation: size mismatch");
  }
  // Stable softmax.
  std::vector<double> p(static_cast<std::size_t>(n));
  double mx = alpha.value().at(0);
  for (std::int64_t i = 1; i < n; ++i) mx = std::max(mx, static_cast<double>(alpha.value().at(i)));
  double denom = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    p[static_cast<std::size_t>(i)] = std::exp(static_cast<double>(alpha.value().at(i)) - mx);
    denom += p[static_cast<std::size_t>(i)];
  }
  double expectation = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    p[static_cast<std::size_t>(i)] /= denom;
    expectation += p[static_cast<std::size_t>(i)] * values[static_cast<std::size_t>(i)];
  }
  Tensor out(Shape{1});
  out.at(0) = static_cast<float>(expectation);

  auto aln = alpha.node();
  return ag::apply_op("softmax_expectation", {alpha}, std::move(out),
                      [aln, p, values, expectation, n](ag::Node& node) {
                        if (!aln->requires_grad) return;
                        const float g = node.grad.at(0);
                        Tensor da(aln->value.shape());
                        for (std::int64_t i = 0; i < n; ++i) {
                          da.at(i) = g * static_cast<float>(
                                             p[static_cast<std::size_t>(i)] *
                                             (values[static_cast<std::size_t>(i)] - expectation));
                        }
                        aln->accum_grad(da);
                      });
}

MixedConv2d::MixedConv2d(const nn::Conv2dOptions& base, std::vector<Candidate> candidates,
                         Rng& rng)
    : candidates_(std::move(candidates)) {
  if (candidates_.size() < 2) {
    throw std::invalid_argument("MixedConv2d: need at least two candidates");
  }
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    nn::Conv2dOptions opts = base;
    opts.algo = candidates_[i].algo;
    opts.qspec = candidates_[i].qspec;
    opts.flex_transforms = candidates_[i].flex;
    auto op = core::make_conv(opts, rng);
    register_child("op" + std::to_string(i) + "_" + candidates_[i].to_string(), op);
    ops_.push_back(std::move(op));
  }
  alpha_ = register_parameter("alpha",
                              Tensor::zeros({static_cast<std::int64_t>(candidates_.size())}));
}

void MixedConv2d::sample(Rng& rng) {
  const auto probs = probabilities();
  if (mode_ == Mode::kSingle) {
    active_ = rng.categorical(probs);
    return;
  }
  pair_a_ = rng.categorical(probs);
  // Sample the second path from the renormalised remainder.
  std::vector<double> rest = probs;
  rest[pair_a_] = 0;
  pair_b_ = rng.categorical(rest);
}

void MixedConv2d::set_active(std::size_t idx) {
  if (idx >= ops_.size()) throw std::out_of_range("MixedConv2d::set_active");
  active_ = idx;
}

ag::Variable MixedConv2d::forward(const ag::Variable& x) {
  if (mode_ == Mode::kSingle) return ops_[active_]->forward(x);
  ag::Variable a = ops_[pair_a_]->forward(x);
  ag::Variable b = ops_[pair_b_]->forward(x);
  return weighted_pair(a, b, alpha_, pair_a_, pair_b_);
}

std::vector<double> MixedConv2d::probabilities() const {
  std::vector<double> p(candidates_.size());
  double mx = alpha_.value().at(0);
  for (std::int64_t i = 1; i < alpha_.numel(); ++i) {
    mx = std::max(mx, static_cast<double>(alpha_.value().at(i)));
  }
  double denom = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = std::exp(static_cast<double>(alpha_.value().at(static_cast<std::int64_t>(i))) - mx);
    denom += p[i];
  }
  for (auto& v : p) v /= denom;
  return p;
}

ag::Variable MixedConv2d::expected_latency() {
  std::vector<double> lats;
  lats.reserve(candidates_.size());
  for (const auto& c : candidates_) lats.push_back(c.latency_ms);
  return softmax_expectation(alpha_, std::move(lats));
}

std::size_t MixedConv2d::best() const {
  std::size_t arg = 0;
  for (std::int64_t i = 1; i < alpha_.numel(); ++i) {
    if (alpha_.value().at(i) > alpha_.value().at(static_cast<std::int64_t>(arg))) {
      arg = static_cast<std::size_t>(i);
    }
  }
  return arg;
}

std::vector<Candidate> winas_wa_candidates(const quant::QuantSpec& spec) {
  std::vector<Candidate> c;
  c.push_back({nn::ConvAlgo::kIm2row, spec, false, 0});
  c.push_back({nn::ConvAlgo::kWinograd2, spec, true, 0});
  c.push_back({nn::ConvAlgo::kWinograd4, spec, true, 0});
  c.push_back({nn::ConvAlgo::kWinograd6, spec, true, 0});
  return c;
}

std::vector<Candidate> winas_wa_q_candidates() {
  std::vector<Candidate> c;
  for (int bits : {32, 16, 8}) {
    for (const auto& base : winas_wa_candidates(quant::QuantSpec{bits})) {
      c.push_back(base);
    }
  }
  return c;
}

}  // namespace wa::nas
