#include "nas/winas.hpp"

#include <cstdio>
#include <sstream>

#include "autograd/ops.hpp"
#include "latency/resnet_profile.hpp"

namespace wa::nas {

namespace {

/// Latency of a candidate on a given layer geometry.
double candidate_latency(const latency::LatencyModel& model, const backend::ConvGeometry& geom,
                         const Candidate& c) {
  latency::LayerDesc desc;
  desc.geom = geom;
  desc.algo = c.algo;
  desc.dtype = latency::dtype_for(c.qspec);
  desc.dense_transforms = c.flex && nn::is_winograd(c.algo);
  return model.conv_cost(desc).total_ms();
}

}  // namespace

WinasSearch::WinasSearch(const WinasOptions& opts, const data::Dataset& train_set,
                         const data::Dataset& val_set)
    : opts_(opts), train_(train_set), val_(val_set), rng_(opts.seed) {
  const latency::LatencyModel model(opts_.core);
  std::map<std::string, backend::ConvGeometry> geometry;
  for (const auto& l : latency::resnet18_conv_layers(opts_.width_mult)) {
    geometry[l.name] = l.geom;
  }

  models::ConvBuilder builder = [this, &model, &geometry](const nn::Conv2dOptions& base,
                                                          const std::string& name) {
    auto candidates =
        opts_.search_quant ? winas_wa_q_candidates() : winas_wa_candidates(opts_.fixed_spec);
    const auto geo_it = geometry.find(name);
    if (geo_it == geometry.end()) {
      throw std::logic_error("wiNAS: no geometry for layer " + name);
    }
    for (auto& c : candidates) c.latency_ms = candidate_latency(model, geo_it->second, c);
    auto mixed = std::make_shared<MixedConv2d>(base, std::move(candidates), rng_);
    mixed_.push_back(mixed);
    mixed_names_.push_back(name);
    return mixed;
  };

  models::ResNetConfig cfg;
  cfg.width_mult = opts_.width_mult;
  cfg.num_classes = train_set.num_classes;
  cfg.qspec = opts_.search_quant ? quant::QuantSpec{32} : opts_.fixed_spec;  // non-searchable layers
  // The builder ignores cfg.algo: every searchable layer becomes a mixture.
  net_ = std::make_shared<models::ResNet18>(cfg, builder, rng_);
}

void WinasSearch::set_mode(MixedConv2d::Mode mode) {
  for (auto& m : mixed_) m->set_mode(mode);
}

void WinasSearch::sample_all(Rng& rng) {
  for (auto& m : mixed_) m->sample(rng);
}

SearchResult WinasSearch::run() {
  // Parameter split: architecture params (alphas) vs model weights.
  std::vector<ag::Variable> alphas, weights;
  for (auto& m : mixed_) alphas.push_back(m->alpha());
  for (auto& p : net_->parameters()) {
    bool is_alpha = false;
    for (const auto& a : alphas) is_alpha = is_alpha || a.node().get() == p.node().get();
    if (!is_alpha) weights.push_back(p);
  }

  train::SgdOptions sgd_opts;
  sgd_opts.lr = opts_.weight_lr;
  sgd_opts.nesterov = true;
  train::Sgd weight_opt(weights, sgd_opts);

  train::AdamOptions adam_opts;
  adam_opts.lr = opts_.arch_lr;
  adam_opts.beta1 = 0.F;  // only sampled paths move (paper §5.2)
  train::Adam arch_opt(alphas, adam_opts);

  data::DataLoader loader(train_, opts_.batch_size, /*shuffle=*/true, opts_.seed);
  const std::int64_t steps = loader.batches();
  train::CosineSchedule schedule(opts_.weight_lr,
                                 static_cast<std::int64_t>(opts_.epochs) * steps);

  std::int64_t global_step = 0;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    loader.reset();
    net_->set_training(true);
    for (std::int64_t b = 0; b < steps; ++b) {
      const auto batch = loader.get(b);
      ag::Variable x(batch.images, false, "input");

      if (b % 2 == 0) {
        // ---- weight step: one sampled path, CE only -----------------------
        weight_opt.set_lr(schedule.at(global_step));
        set_mode(MixedConv2d::Mode::kSingle);
        sample_all(rng_);
        ag::Variable loss = ag::softmax_cross_entropy(net_->forward(x), batch.labels);
        weight_opt.zero_grad();
        arch_opt.zero_grad();
        loss.backward();
        weight_opt.step();
      } else {
        // ---- arch step: two paths, latency-aware loss ----------------------
        set_mode(MixedConv2d::Mode::kPair);
        sample_all(rng_);
        ag::Variable loss = ag::softmax_cross_entropy(net_->forward(x), batch.labels);
        for (auto& m : mixed_) {
          ag::Variable reg = ag::sum(ag::mul(m->alpha(), m->alpha()));
          loss = ag::add(loss, ag::scale(reg, opts_.lambda1));
          loss = ag::add(loss, ag::scale(m->expected_latency(), opts_.lambda2));
        }
        arch_opt.zero_grad();
        weight_opt.zero_grad();
        loss.backward();
        arch_opt.step();
      }
      ++global_step;
    }
    if (opts_.verbose) {
      std::printf("  winas epoch %d done\n", epoch);
      std::fflush(stdout);
    }
  }

  // ---- derive -----------------------------------------------------------------
  SearchResult result;
  for (std::size_t i = 0; i < mixed_.size(); ++i) {
    const std::size_t best = mixed_[i]->best();
    LayerChoice choice;
    choice.layer = mixed_names_[i];
    choice.chosen = mixed_[i]->candidates()[best];
    choice.probabilities = mixed_[i]->probabilities();
    result.choices.push_back(choice);
    models::LayerOverride ov;
    ov.algo = choice.chosen.algo;
    ov.qspec = choice.chosen.qspec;
    ov.flex = choice.chosen.flex;
    result.assignment[choice.layer] = ov;
    result.expected_latency_ms += choice.chosen.latency_ms;
    mixed_[i]->set_active(best);
  }

  // Evaluate the supernet along the argmax path.
  set_mode(MixedConv2d::Mode::kSingle);
  net_->set_training(false);
  data::DataLoader val_loader(val_, opts_.batch_size, false);
  double acc = 0;
  std::int64_t n = 0;
  for (std::int64_t b = 0; b < val_loader.batches(); ++b) {
    const auto batch = val_loader.get(b);
    ag::Variable x(batch.images, false);
    acc += static_cast<double>(ag::accuracy(net_->forward(x).value(), batch.labels)) *
           static_cast<double>(batch.labels.size());
    n += static_cast<std::int64_t>(batch.labels.size());
  }
  result.final_val_acc = n > 0 ? static_cast<float>(acc / static_cast<double>(n)) : 0.F;
  return result;
}

std::string format_architecture(const SearchResult& result) {
  std::ostringstream os;
  for (const auto& c : result.choices) {
    os << "  " << c.layer << ": " << nn::to_string(c.chosen.algo) << " "
       << c.chosen.qspec.to_string() << "  (p=";
    double best_p = 0;
    for (double p : c.probabilities) best_p = std::max(best_p, p);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", best_p);
    os << buf << ")\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  expected latency (searchable layers): %.2f ms\n",
                result.expected_latency_ms);
  os << buf;
  return os.str();
}

}  // namespace wa::nas
