// Concurrent batched inference server over compiled Int8Pipelines.
//
// The missing substrate between "a pipeline runs in the process that
// compiled it" and the roadmap's serving story. An InferenceServer owns a
// registry of named models (loaded from .wam artifacts or adopted from an
// in-process compiler), a bounded per-model submission queue with
// backpressure, and a pool of worker threads running a dynamic
// micro-batching scheduler: a worker claims the oldest pending queue,
// lingers up to `max_delay_us` for more requests to coalesce (up to
// `max_batch` samples with identical sample shape), dispatches the group as
// ONE pipeline forward, then slices the logits back per request and
// completes each caller's future.
//
// Correctness under coalescing rests on two audited properties:
//   - Int8Pipeline::run() is const and thread-safe (see pipeline.hpp), so
//     any number of workers can share one pipeline;
//   - registration requires all_scales_frozen(), so a sample's logits are
//     bit-identical no matter which unrelated requests it was batched with
//     — the hammer test asserts server results equal single-threaded run().
//
// Each worker pins its OpenMP team size (default 1) so throughput scales
// with workers instead of oversubscribing the machine with nested teams.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "deploy/pipeline.hpp"

namespace wa::serve {

/// Dynamic micro-batching policy: dispatch as soon as `max_batch` samples
/// are pending, or when the oldest queued request has waited `max_delay_us`.
/// max_batch 1 (or max_delay_us 0) degenerates to request-at-a-time serving.
struct BatchPolicy {
  std::int64_t max_batch = 8;
  std::int64_t max_delay_us = 200;
};

/// Admission priority classes, strictly ordered: within a model, a worker
/// always dispatches the highest non-empty class first, so a low-priority
/// burst queues BEHIND high-priority traffic instead of starving it (the
/// backpressure cap is shared, so sustained low traffic still cannot wedge
/// the queue — expired and rejected low requests fail fast).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kPriorityClasses = 3;
const char* priority_name(Priority p);  ///< "high" / "normal" / "low"

/// Per-request admission options. A deadline is a *relative* budget from
/// submission: the request is refused up front when the model's smoothed
/// dispatch time already exceeds it, and dropped (never dispatched, future
/// fails, completion gets the error) when it expires while queued — an
/// overloaded server sheds exactly the work whose answer would arrive too
/// late to matter instead of queueing it deeper.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  std::int64_t deadline_us = 0;  ///< 0 = no deadline
};

/// submit_async admission verdict. kAccepted guarantees the completion fires
/// exactly once (value or error); every other verdict means it never will.
enum class Admission : std::uint8_t {
  kAccepted = 0,
  kQueueFull,           ///< backpressure cap hit (counted as rejected)
  kDeadlineInfeasible,  ///< budget below the smoothed service time (counted as expired)
  kUnknownModel,
  kShutdown,
};
const char* admission_name(Admission a);

/// Completion for submit_async: exactly one of (error, logits). Invoked on a
/// worker thread after the dispatch is accounted — keep it cheap and never
/// call remove_model/shutdown from inside it (both wait on dispatches).
using Completion = std::function<void(std::exception_ptr, Tensor)>;

struct ServerOptions {
  int workers = 2;
  /// Per-model cap on queued *requests* across all priority classes;
  /// submit() blocks and try_submit() rejects once it is reached
  /// (backpressure instead of unbounded memory).
  std::size_t queue_capacity = 256;
  BatchPolicy batch;
  /// OpenMP team size inside each worker's forward. 1 lets N workers use N
  /// cores without nested oversubscription; 0 leaves the runtime default.
  int omp_threads_per_worker = 1;
  /// Worker-pool shards for multi-socket hosts: workers are dealt
  /// round-robin over shards and each shard materializes its own replica of
  /// every model (copied lazily on the shard's own worker thread, so under
  /// the kernel's first-touch policy the replica's weights land on that
  /// worker's NUMA node). 0 = one shard per NUMA node read from
  /// /sys/devices/system/node (gracefully 1 when the sysfs probe finds
  /// nothing); clamped to [1, workers].
  int shards = 1;
};

/// Request latency summary. The quantiles are estimates read from the
/// model's telemetry histogram (linear interpolation inside the owning
/// bucket, so accuracy is one bucket width — the edges grow by 1.25x per
/// bucket); mean and max are exact. Monotone by construction: p99 >= p95 >=
/// p50 for any traffic.
struct LatencyStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct ModelStats {
  std::uint64_t requests = 0;  ///< completed requests
  std::uint64_t samples = 0;   ///< completed samples (batch rows)
  std::uint64_t batches = 0;   ///< pipeline dispatches
  std::uint64_t failed = 0;    ///< requests completed with an exception
  std::uint64_t rejected = 0;  ///< try_submit refusals due to a full queue
  /// Deadline misses: requests refused at admission (budget below the
  /// smoothed service time) plus requests dropped while queued because their
  /// deadline passed before a worker reached them.
  std::uint64_t expired = 0;
  std::size_t queue_depth = 0; ///< requests queued right now
  /// Completed requests per priority class (index = Priority value).
  std::array<std::uint64_t, kPriorityClasses> class_requests{};
  /// End-to-end request latency (enqueue -> future completed) since this
  /// model was registered, summarized from its telemetry histogram
  /// (wa_serve_latency_ms{model=...} minus the baseline captured at
  /// add_model, so a re-registered name starts a fresh window while the
  /// exported series stays cumulative).
  LatencyStats latency;
  /// batch_size_hist[k] counts dispatches that coalesced k samples
  /// (index 0 aggregates anything >= the histogram length).
  std::vector<std::uint64_t> batch_size_hist;
  /// Completed samples per second since the model's first submission.
  double samples_per_sec = 0.0;
  /// High-water mark of live inter-stage activation bytes over all of this
  /// model's dispatches (Int8Pipeline::RunStats measured per forward). With
  /// an optimized pipeline this is bounded by the memory plan's peak_bytes
  /// scaled to the largest dispatched batch; 0 until the first dispatch.
  std::int64_t peak_activation_bytes = 0;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions opts = {});
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Adopt an in-process pipeline under `name`. Throws std::invalid_argument
  /// for an empty pipeline, a duplicate name, or a pipeline with dynamic
  /// scales (freeze_scales() first — coalesced batches must not perturb each
  /// other's logits).
  void add_model(const std::string& name, deploy::Int8Pipeline pipe);

  /// Load a .wam artifact from disk and register it. Same frozen-scales
  /// requirement as add_model.
  void load_model(const std::string& name, const std::string& wam_path);

  /// Unregister `name`. In-flight dispatches complete normally (workers
  /// hold the model state alive); requests still queued when the removal
  /// lands fail with std::runtime_error — every accepted future is always
  /// completed, value or exception, never lost. Submitters blocked on the
  /// removed model's full queue wake and throw. Blocks until the last
  /// in-flight dispatch has been accounted, so when it returns the removed
  /// incarnation's samples are all in the exported series and a re-
  /// registration under the same name starts a clean stats() window (never
  /// call it from a Completion — that dispatch is the one being waited on).
  /// Throws std::invalid_argument for an unknown model.
  void remove_model(const std::string& name);

  std::vector<std::string> model_names() const;

  /// Enqueue `input` ([N, ...], N >= 1) for `model`; the future resolves to
  /// the dequantized logits [N, classes] (or an exception if the forward
  /// threw). Blocks while the model's queue is full; throws
  /// std::invalid_argument for an unknown model and std::runtime_error
  /// after shutdown.
  ///
  /// When tracing is on (WA_TRACE=N / telemetry::Tracer::set_sampling),
  /// every Nth submission mints a TraceContext that rides the request
  /// through the queue, the coalescer and the dispatch into the pipeline —
  /// dump with telemetry::dump_chrome_trace. Logits are bit-identical
  /// whether or not a request was sampled.
  std::future<Tensor> submit(const std::string& model, Tensor input);

  /// submit with admission options. An infeasible deadline returns a future
  /// already holding the rejection (and ticks `expired`) — the signature
  /// stays, the request never queues.
  std::future<Tensor> submit(const std::string& model, Tensor input, SubmitOptions opts);

  /// Non-blocking submit: std::nullopt (and a `rejected` tick) when the
  /// queue is full instead of waiting.
  std::optional<std::future<Tensor>> try_submit(const std::string& model, Tensor input,
                                                SubmitOptions opts = {});

  /// Callback submission for event-loop callers (the network frontend):
  /// never blocks, never throws for serving-state reasons (only for a
  /// malformed input tensor). kAccepted means `done` fires exactly once on
  /// a worker thread; any other verdict means it never will and the caller
  /// owns the error reply. `input` is consumed only on kAccepted — on every
  /// rejection it is left untouched so the caller can recycle its storage.
  Admission submit_async(const std::string& model, Tensor&& input, SubmitOptions opts,
                         Completion done);

  ModelStats stats(const std::string& model) const;

  /// Resolved worker-pool shard count (after NUMA auto-detection/clamping).
  int shards() const;

  /// Stop accepting work, drain every queued request, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Prometheus text exposition of the global telemetry registry — every
/// server/pipeline/kernel metric in one dump (the socket-less stand-in for a
/// /metrics endpoint). Counters are process-lifetime; see
/// docs/OBSERVABILITY.md for the naming scheme.
void dump_metrics(std::ostream& os);

}  // namespace wa::serve
