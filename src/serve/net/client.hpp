// Blocking TCP client for the serving wire protocol. One connection, two
// independent halves: send() writes a request frame and returns immediately
// (the socket keeps any number of requests in flight, responses come back
// in completion order keyed by request_id), recv() blocks for the next
// response frame. infer() is the one-shot convenience wrapping both.
//
// Not thread-safe: one Client per thread (the load harness opens one per
// connection worker). Framing errors and peer hangups throw
// std::runtime_error — a byte stream that lost sync cannot be recovered.
#pragma once

#include <cstdint>
#include <string>

#include "serve/net/protocol.hpp"

namespace wa::serve::net {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  /// Write one request frame (blocks until the kernel accepts every byte).
  void send(std::uint64_t request_id, const std::string& model, const Tensor& input,
            SubmitOptions opts = {});

  /// Block for the next response frame, whatever its status.
  Response recv();

  /// send + recv with an auto-assigned id; throws std::runtime_error when
  /// the response status is not kOk. Only valid with no other request in
  /// flight on this connection.
  Tensor infer(const std::string& model, const Tensor& input, SubmitOptions opts = {});

 private:
  void write_all(const std::uint8_t* data, std::size_t len);
  void read_all(std::uint8_t* data, std::size_t len);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace wa::serve::net
