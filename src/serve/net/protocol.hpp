// Wire protocol for the serving network frontend: length-prefixed binary
// frames over a byte stream (TCP in practice — the codec itself only sees
// spans).
//
// Every frame is a little-endian u32 byte length followed by that many body
// bytes. A request body is a fixed 20-byte head, then the variable metadata
// (model name bytes + i64 dims), then the raw f32 payload — laid out so a
// streaming decoder knows every section's size before reading it and can
// land the payload *directly* in its final float storage (the frontend
// decodes into an arena-recycled slab that becomes the request Tensor with
// zero further copies). A response body is a fixed 16-byte head followed by
// either the logits (dims + f32 payload) or an error message.
//
//   request body                        response body
//   ------------                        -------------
//   u32  magic  "WANQ"                  u32  magic  "WANR"
//   u8   version (= 1)                  u8   status (Status)
//   u8   priority (serve::Priority)     u8   ndim        (status 0 only)
//   u8   ndim      (1..kMaxNdim)        u16  reserved (= 0)
//   u8   model_len (1..kMaxModelLen)    u64  request_id
//   u64  request_id                     ok:  i64 dims[ndim], f32 payload
//   u32  deadline_us (0 = none)         err: u16 msg_len, msg bytes
//   ---- 20 bytes (kRequestHeadBytes)   ---- 16 bytes (kResponseHeadBytes)
//   model_len bytes of model name
//   i64  dims[ndim]
//   f32  payload (prod(dims) floats)
//
// All multi-byte fields are little-endian; the codec memcpy's through
// std::bit_cast-able types and the library refuses to build on a big-endian
// host (static_assert below) rather than silently swapping.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace wa::serve::net {

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

inline constexpr std::uint32_t kRequestMagic = 0x514E4157;   // "WANQ"
inline constexpr std::uint32_t kResponseMagic = 0x524E4157;  // "WANR"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kRequestHeadBytes = 20;
inline constexpr std::size_t kResponseHeadBytes = 16;
inline constexpr std::size_t kMaxNdim = 8;
inline constexpr std::size_t kMaxModelLen = 255;

/// Response status byte. The first five mirror serve::Admission verdicts;
/// kBadRequest is a frame the decoder refused (never reached admission) and
/// kForwardError is an accepted request whose dispatch threw.
enum class Status : std::uint8_t {
  kOk = 0,
  kQueueFull = 1,
  kDeadlineInfeasible = 2,
  kUnknownModel = 3,
  kShutdown = 4,
  kBadRequest = 5,
  kForwardError = 6,
};
const char* status_name(Status s);
Status status_from_admission(Admission a);

/// Parsed fixed request head. ndim/model_len bound the metadata section that
/// follows; payload size is known only after the dims arrive.
struct RequestHead {
  std::uint64_t request_id = 0;
  std::uint32_t deadline_us = 0;
  Priority priority = Priority::kNormal;
  std::uint8_t ndim = 0;
  std::uint8_t model_len = 0;
};

/// Decoded response frame: exactly one of (logits, error) is meaningful,
/// keyed by status.
struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  Tensor logits;      ///< status == kOk
  std::string error;  ///< status != kOk
};

// ---- little-endian scalar codec (bounds are the caller's problem) ----------
inline std::uint16_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::int64_t load_i64(const std::uint8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Parse the fixed 20-byte request head. Returns "" on success, else a
/// human-readable reason (bad magic / version / ndim / model_len) that the
/// frontend ships back verbatim in a kBadRequest response.
std::string parse_request_head(std::span<const std::uint8_t> head, RequestHead& out);

/// Byte count of the metadata section the head announces (model + dims).
inline std::size_t request_meta_bytes(const RequestHead& h) {
  return static_cast<std::size_t>(h.model_len) + static_cast<std::size_t>(h.ndim) * 8;
}

/// Parse the metadata section into the model name and the sample shape.
/// Returns "" on success. Every dim must be positive.
std::string parse_request_meta(std::span<const std::uint8_t> meta, const RequestHead& h,
                               std::string& model, Shape& dims);

/// Overflow-safe product of wire dims. Dims come from untrusted bytes, so the
/// naive `numel *= d` can wrap mod 2^64 and make a tiny payload pass the
/// frame-length check for an absurd shape. Returns false (and leaves `out`
/// untouched) when any dim is non-positive or the running product exceeds
/// `max_numel`; the cap also guarantees `out * sizeof(float)` cannot overflow
/// for any sane cap (≤ 2^62).
inline bool checked_numel(const Shape& dims, std::uint64_t max_numel, std::uint64_t& out) {
  std::uint64_t n = 1;
  for (const std::int64_t d : dims) {
    if (d <= 0) return false;
    const auto u = static_cast<std::uint64_t>(d);
    if (n > max_numel / u) return false;
    n *= u;
  }
  out = n;
  return true;
}

// ---- whole-frame encoders (length prefix included) -------------------------
/// Client-side request frame.
std::vector<std::uint8_t> encode_request(std::uint64_t request_id, std::string_view model,
                                         const Tensor& input, SubmitOptions opts);
/// Server-side success frame carrying the logits.
std::vector<std::uint8_t> encode_ok_response(std::uint64_t request_id, const Tensor& logits);
/// Server-side failure frame. `msg` is truncated to 64 KiB - 1.
std::vector<std::uint8_t> encode_error_response(std::uint64_t request_id, Status status,
                                                std::string_view msg);

/// Client-side decode of a response *body* (length prefix already stripped).
/// Returns "" on success, else why the frame is malformed.
std::string decode_response(std::span<const std::uint8_t> body, Response& out);

}  // namespace wa::serve::net
