#include "serve/net/frontend.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "serve/net/protocol.hpp"
#include "serve/net/slab.hpp"
#include "telemetry/metrics.hpp"

namespace wa::serve::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One accepted connection. The read state machine and all socket I/O are
/// loop-thread-only; the outbox is the single cross-thread surface
/// (completions append under wmu and ring the wake fd).
struct Conn {
  int fd = -1;

  // ---- read state machine (loop thread only) ------------------------------
  enum class R : std::uint8_t { kLen, kHead, kMeta, kPayload };
  R rstate = R::kLen;
  std::size_t got = 0;  ///< bytes consumed of the current section
  std::uint8_t len_buf[4] = {};
  std::uint32_t frame_len = 0;
  std::uint8_t head[kRequestHeadBytes] = {};
  RequestHead rh;
  std::vector<std::uint8_t> meta;
  std::string model;
  Shape dims;
  std::size_t payload_bytes = 0;
  std::vector<float> payload;  ///< slab-backed; becomes the request Tensor
  /// Unrecoverable framing error: stop decoding, flush the error reply,
  /// then close (bytes read while draining are discarded).
  bool draining = false;

  // ---- write side (any thread, under wmu) ----------------------------------
  std::mutex wmu;
  std::deque<std::vector<std::uint8_t>> outbox;
  std::size_t out_off = 0;     ///< bytes of outbox.front() already written
  bool want_write = false;     ///< loop thread only: current EPOLLOUT interest
  std::atomic<bool> closed{false};
};

/// The wake channel, ref-counted separately from the frontend so a
/// completion firing after stop() rings a still-open (if never again read)
/// descriptor instead of a recycled one.
struct WakeState {
  int rfd = -1;  ///< loop reads this (eventfd, or pipe read end)
  int wfd = -1;  ///< completions write this (same eventfd, or pipe write end)
  std::mutex mu;
  std::vector<std::shared_ptr<Conn>> pending;

  ~WakeState() {
    if (rfd >= 0) ::close(rfd);
    if (wfd >= 0 && wfd != rfd) ::close(wfd);
  }

  void ring(std::shared_ptr<Conn> c) {
    {
      std::lock_guard<std::mutex> lk(mu);
      pending.push_back(std::move(c));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wfd, &one, sizeof one);
  }

  std::vector<std::shared_ptr<Conn>> take_pending() {
    std::uint8_t buf[64];
    while (::read(rfd, buf, sizeof buf) > 0) {
    }
    std::lock_guard<std::mutex> lk(mu);
    return std::exchange(pending, {});
  }
};

struct Event {
  int fd;
  bool readable;
  bool writable;
};

#ifdef __linux__

/// epoll readiness backend: O(1) interest updates, scales to thousands of
/// connections.
class Poller {
 public:
  Poller() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (ep_ < 0) throw std::runtime_error("NetFrontend: epoll_create1 failed");
  }
  ~Poller() { ::close(ep_); }
  void add(int fd, bool write_interest) { ctl(EPOLL_CTL_ADD, fd, write_interest); }
  void mod(int fd, bool write_interest) { ctl(EPOLL_CTL_MOD, fd, write_interest); }
  void del(int fd) {
    epoll_event ev{};
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, &ev);
  }
  void wait(std::vector<Event>& out, int timeout_ms) {
    epoll_event evs[128];
    const int n = ::epoll_wait(ep_, evs, 128, timeout_ms);
    out.clear();
    for (int i = 0; i < n; ++i) {
      out.push_back({evs[i].data.fd,
                     (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0,
                     (evs[i].events & EPOLLOUT) != 0});
    }
  }

 private:
  void ctl(int op, int fd, bool write_interest) {
    epoll_event ev{};
    ev.events = EPOLLIN | (write_interest ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(ep_, op, fd, &ev);
  }
  int ep_;
};

#else

/// Portable poll(2) fallback: interest set rebuilt per wait. Fine for the
/// connection counts non-Linux dev machines see.
class Poller {
 public:
  void add(int fd, bool write_interest) { interest_[fd] = write_interest; }
  void mod(int fd, bool write_interest) { interest_[fd] = write_interest; }
  void del(int fd) { interest_.erase(fd); }
  void wait(std::vector<Event>& out, int timeout_ms) {
    pfds_.clear();
    for (const auto& [fd, w] : interest_) {
      pfds_.push_back({fd, static_cast<short>(POLLIN | (w ? POLLOUT : 0)), 0});
    }
    out.clear();
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      out.push_back({p.fd, (p.revents & (POLLIN | POLLERR | POLLHUP)) != 0,
                     (p.revents & POLLOUT) != 0});
    }
  }

 private:
  std::unordered_map<int, bool> interest_;
  std::vector<pollfd> pfds_;
};

#endif

}  // namespace

struct NetFrontend::Impl {
  InferenceServer& server;
  const FrontendOptions opts;
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::shared_ptr<WakeState> wake = std::make_shared<WakeState>();
  std::shared_ptr<SlabPool> pool;
  std::thread loop;
  std::atomic<bool> stop_flag{false};
  bool stopped = false;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // loop thread only

  // Process-lifetime handles into the registry: copying them into a
  // completion lambda is safe even after this Impl dies.
  telemetry::Counter c_accepts;
  telemetry::Gauge g_conns;
  telemetry::Counter c_requests;
  telemetry::Counter c_bad_frames;
  telemetry::Counter c_status[7];

  Impl(InferenceServer& srv, FrontendOptions o)
      : server(srv), opts(o), pool(std::make_shared<SlabPool>(o.max_pooled_bytes)) {
    auto& reg = telemetry::Registry::global();
    c_accepts = reg.counter("wa_net_accepts_total");
    g_conns = reg.gauge("wa_net_connections");
    c_requests = reg.counter("wa_net_requests_total");
    c_bad_frames = reg.counter("wa_net_bad_frames_total");
    for (int s = 0; s <= static_cast<int>(Status::kForwardError); ++s) {
      c_status[s] = reg.counter(std::string("wa_net_responses_total{status=\"") +
                                status_name(static_cast<Status>(s)) + "\"}");
    }

    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw std::runtime_error("NetFrontend: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts.port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd, opts.backlog) != 0) {
      const int err = errno;
      ::close(listen_fd);
      throw std::runtime_error(std::string("NetFrontend: bind/listen failed: ") +
                               std::strerror(err));
    }
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &alen);
    bound_port = ntohs(addr.sin_port);
    set_nonblocking(listen_fd);

#ifdef __linux__
    wake->rfd = wake->wfd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake->rfd < 0) {
      ::close(listen_fd);
      throw std::runtime_error("NetFrontend: eventfd() failed");
    }
#else
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      ::close(listen_fd);
      throw std::runtime_error("NetFrontend: pipe() failed");
    }
    set_nonblocking(pipefd[0]);
    set_nonblocking(pipefd[1]);
    wake->rfd = pipefd[0];
    wake->wfd = pipefd[1];
#endif

    loop = std::thread([this] { run_loop(); });
  }

  // ---- write path ----------------------------------------------------------

  /// Drain the outbox as far as the socket accepts. False = fatal error.
  bool flush_writes(Conn& c) {
    std::lock_guard<std::mutex> lk(c.wmu);
    while (!c.outbox.empty()) {
      const auto& front = c.outbox.front();
      while (c.out_off < front.size()) {
        const ssize_t n = ::write(c.fd, front.data() + c.out_off, front.size() - c.out_off);
        if (n < 0) {
          if (errno == EINTR) continue;
          return errno == EAGAIN || errno == EWOULDBLOCK;
        }
        c.out_off += static_cast<std::size_t>(n);
      }
      c.outbox.pop_front();
      c.out_off = 0;
    }
    return true;
  }

  bool has_pending_writes(Conn& c) {
    std::lock_guard<std::mutex> lk(c.wmu);
    return !c.outbox.empty();
  }

  void update_write_interest(Poller& poller, Conn& c) {
    const bool want = has_pending_writes(c);
    if (want != c.want_write) {
      c.want_write = want;
      poller.mod(c.fd, want);
    }
  }

  /// Loop-thread error reply: enqueue, try to flush inline, arm EPOLLOUT
  /// for whatever the socket didn't take.
  void send_error(Poller& poller, Conn& c, std::uint64_t id, Status status,
                  const std::string& msg) {
    c_status[static_cast<int>(status)].inc();
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      c.outbox.push_back(encode_error_response(id, status, msg));
    }
    flush_writes(c);
    update_write_interest(poller, c);
  }

  // ---- connection lifecycle ------------------------------------------------

  void accept_all(Poller& poller) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN / transient — either way, back to the loop
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto c = std::make_shared<Conn>();
      c->fd = fd;
      conns.emplace(fd, std::move(c));
      poller.add(fd, false);
      c_accepts.inc();
      g_conns.set(static_cast<double>(conns.size()));
    }
  }

  void close_conn(Poller& poller, const std::shared_ptr<Conn>& c) {
    if (c->closed.exchange(true)) return;
    poller.del(c->fd);
    conns.erase(c->fd);
    ::close(c->fd);
    g_conns.set(static_cast<double>(conns.size()));
  }

  // ---- read path -----------------------------------------------------------

  /// Read a section; true when it is complete, false when the socket has no
  /// more bytes now (or `fatal` when the peer hung up / errored).
  bool read_section(Conn& c, std::uint8_t* dst, std::size_t want, bool& fatal) {
    fatal = false;
    while (c.got < want) {
      const ssize_t n = ::read(c.fd, dst + c.got, want - c.got);
      if (n == 0) {
        fatal = true;
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        fatal = !(errno == EAGAIN || errno == EWOULDBLOCK);
        return false;
      }
      c.got += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Advance the frame decoder as far as the socket allows. False = close.
  bool handle_readable(Poller& poller, const std::shared_ptr<Conn>& c) {
    if (c->draining) {  // discard anything after an unrecoverable frame
      std::uint8_t scratch[4096];
      for (;;) {
        const ssize_t n = ::read(c->fd, scratch, sizeof scratch);
        if (n == 0) return false;
        if (n < 0) return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
      }
    }
    bool fatal = false;
    for (;;) {
      switch (c->rstate) {
        case Conn::R::kLen: {
          if (!read_section(*c, c->len_buf, 4, fatal)) return !fatal;
          c->frame_len = load_u32(c->len_buf);
          if (c->frame_len < kRequestHeadBytes || c->frame_len > opts.max_frame_bytes) {
            c_bad_frames.inc();
            send_error(poller, *c, 0, Status::kBadRequest,
                       "bad frame length " + std::to_string(c->frame_len));
            return start_draining(poller, *c);
          }
          c->rstate = Conn::R::kHead;
          c->got = 0;
          break;
        }
        case Conn::R::kHead: {
          if (!read_section(*c, c->head, kRequestHeadBytes, fatal)) return !fatal;
          const std::string err = parse_request_head({c->head, kRequestHeadBytes}, c->rh);
          const std::size_t meta = err.empty() ? request_meta_bytes(c->rh) : 0;
          if (!err.empty() || c->frame_len < kRequestHeadBytes + meta) {
            c_bad_frames.inc();
            send_error(poller, *c, c->rh.request_id, Status::kBadRequest,
                       err.empty() ? "frame shorter than its metadata" : err);
            return start_draining(poller, *c);
          }
          c->meta.resize(meta);
          c->rstate = Conn::R::kMeta;
          c->got = 0;
          break;
        }
        case Conn::R::kMeta: {
          if (!read_section(*c, c->meta.data(), c->meta.size(), fatal)) return !fatal;
          std::string err = parse_request_meta(c->meta, c->rh, c->model, c->dims);
          std::uint64_t numel = 0;
          if (err.empty()) {
            // Overflow-safe product: attacker-controlled dims must not wrap
            // mod 2^64 and sneak a huge claimed shape past the length check
            // with a tiny payload. The frame cap bounds any honest count.
            if (!checked_numel(c->dims, opts.max_frame_bytes / sizeof(float), numel)) {
              err = "dims product exceeds the frame limit";
            } else {
              c->payload_bytes = static_cast<std::size_t>(numel) * sizeof(float);
              if (c->frame_len != kRequestHeadBytes + c->meta.size() + c->payload_bytes) {
                err = "frame length does not match dims";
              }
            }
          }
          if (!err.empty()) {
            c_bad_frames.inc();
            send_error(poller, *c, c->rh.request_id, Status::kBadRequest, err);
            return start_draining(poller, *c);
          }
          c->payload = pool->acquire(numel);
          c->rstate = Conn::R::kPayload;
          c->got = 0;
          break;
        }
        case Conn::R::kPayload: {
          if (!read_section(*c, reinterpret_cast<std::uint8_t*>(c->payload.data()),
                            c->payload_bytes, fatal)) {
            return !fatal;
          }
          dispatch_request(poller, c);
          c->rstate = Conn::R::kLen;
          c->got = 0;
          break;
        }
      }
    }
  }

  /// After an unrecoverable framing error: keep the connection only to
  /// flush the error reply, then close. True = still draining.
  bool start_draining(Poller& poller, Conn& c) {
    if (!has_pending_writes(c)) return false;  // reply already flushed: close now
    c.draining = true;
    update_write_interest(poller, c);
    return true;
  }

  /// A complete frame is decoded: hand the slab-backed tensor to the server.
  void dispatch_request(Poller& poller, const std::shared_ptr<Conn>& c) {
    c_requests.inc();
    Tensor input(c->dims, std::move(c->payload));
    SubmitOptions sopts;
    sopts.priority = c->rh.priority;
    sopts.deadline_us = c->rh.deadline_us;
    const std::uint64_t id = c->rh.request_id;

    // The completion owns only refcounted state (conn, wake channel, slab
    // pool) plus process-lifetime metric handles — never the Impl, which may
    // be destroyed while this dispatch is still in flight.
    auto wk = wake;
    auto pl = pool;
    auto conn = c;
    const telemetry::Counter ok_ctr = c_status[static_cast<int>(Status::kOk)];
    const telemetry::Counter err_ctr = c_status[static_cast<int>(Status::kForwardError)];
    Admission verdict = Admission::kShutdown;
    try {
      verdict = server.submit_async(
          c->model, std::move(input), sopts,
          [wk, pl, conn, id, ok_ctr, err_ctr](std::exception_ptr err, Tensor logits) {
            std::vector<std::uint8_t> frame;
            if (err != nullptr) {
              std::string msg = "forward failed";
              try {
                std::rethrow_exception(err);
              } catch (const std::exception& e) {
                msg = e.what();
              } catch (...) {
              }
              err_ctr.inc();
              frame = encode_error_response(id, Status::kForwardError, msg);
            } else {
              ok_ctr.inc();
              frame = encode_ok_response(id, logits);
              pl->release(std::move(logits).take_data());
            }
            if (conn->closed.load(std::memory_order_acquire)) return;
            {
              std::lock_guard<std::mutex> lk(conn->wmu);
              conn->outbox.push_back(std::move(frame));
            }
            wk->ring(conn);
          });
    } catch (const std::exception& e) {
      send_error(poller, *c, id, Status::kBadRequest, e.what());
      return;
    }
    if (verdict != Admission::kAccepted) {
      // Rejections leave the tensor untouched: its slab goes straight back
      // into the pool for the next request.
      pool->release(std::move(input).take_data());
      send_error(poller, *c, id, status_from_admission(verdict), admission_name(verdict));
    }
  }

  // ---- the loop ------------------------------------------------------------

  void run_loop() {
    Poller poller;
    poller.add(listen_fd, false);
    poller.add(wake->rfd, false);
    std::vector<Event> events;
    while (!stop_flag.load(std::memory_order_acquire)) {
      poller.wait(events, 250);
      for (const Event& ev : events) {
        if (ev.fd == listen_fd) {
          accept_all(poller);
          continue;
        }
        if (ev.fd == wake->rfd) {
          for (const auto& c : wake->take_pending()) {
            if (c->closed.load(std::memory_order_acquire)) continue;
            if (!flush_writes(*c)) {
              close_conn(poller, c);
              continue;
            }
            if (c->draining && !has_pending_writes(*c)) {
              close_conn(poller, c);
              continue;
            }
            update_write_interest(poller, *c);
          }
          continue;
        }
        const auto it = conns.find(ev.fd);
        if (it == conns.end()) continue;
        const std::shared_ptr<Conn> c = it->second;
        if (ev.writable) {
          if (!flush_writes(*c)) {
            close_conn(poller, c);
            continue;
          }
          if (c->draining && !has_pending_writes(*c)) {
            close_conn(poller, c);
            continue;
          }
          update_write_interest(poller, *c);
        }
        if (ev.readable && !c->closed.load(std::memory_order_relaxed)) {
          if (!handle_readable(poller, c)) {
            close_conn(poller, c);
          }
        }
      }
    }
    // Teardown on the loop thread, which owns every socket.
    for (auto& [fd, c] : conns) {
      c->closed.store(true, std::memory_order_release);
      ::close(fd);
    }
    conns.clear();
    g_conns.set(0);
  }

  void stop() {
    if (stopped) return;
    stopped = true;
    stop_flag.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake->wfd, &one, sizeof one);
    if (loop.joinable()) loop.join();
    ::close(listen_fd);
    listen_fd = -1;
  }
};

NetFrontend::NetFrontend(InferenceServer& server, FrontendOptions opts)
    : impl_(std::make_unique<Impl>(server, opts)) {}

NetFrontend::~NetFrontend() { impl_->stop(); }

std::uint16_t NetFrontend::port() const { return impl_->bound_port; }

void NetFrontend::stop() { impl_->stop(); }

}  // namespace wa::serve::net
