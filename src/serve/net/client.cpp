#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace wa::serve::net {

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("net::Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net::Client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net::Client: connect to " + host + ":" + std::to_string(port) +
                             " failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd_, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("net::Client: write failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void Client::read_all(std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd_, data + off, len - off);
    if (n == 0) throw std::runtime_error("net::Client: connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("net::Client: read failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void Client::send(std::uint64_t request_id, const std::string& model, const Tensor& input,
                  SubmitOptions opts) {
  const std::vector<std::uint8_t> frame = encode_request(request_id, model, input, opts);
  write_all(frame.data(), frame.size());
  if (request_id >= next_id_) next_id_ = request_id + 1;
}

Response Client::recv() {
  std::uint8_t len_buf[4];
  read_all(len_buf, sizeof len_buf);
  const std::uint32_t body_len = load_u32(len_buf);
  if (body_len < kResponseHeadBytes || body_len > (256u << 20)) {
    throw std::runtime_error("net::Client: bad response frame length " +
                             std::to_string(body_len));
  }
  std::vector<std::uint8_t> body(body_len);
  read_all(body.data(), body.size());
  Response resp;
  const std::string err = decode_response(body, resp);
  if (!err.empty()) throw std::runtime_error("net::Client: malformed response: " + err);
  return resp;
}

Tensor Client::infer(const std::string& model, const Tensor& input, SubmitOptions opts) {
  const std::uint64_t id = next_id_++;
  send(id, model, input, opts);
  Response resp = recv();
  if (resp.request_id != id) {
    throw std::runtime_error("net::Client: response id " + std::to_string(resp.request_id) +
                             " for request " + std::to_string(id));
  }
  if (resp.status != Status::kOk) {
    throw std::runtime_error(std::string("net::Client: ") + status_name(resp.status) +
                             (resp.error.empty() ? "" : ": " + resp.error));
  }
  return std::move(resp.logits);
}

}  // namespace wa::serve::net
