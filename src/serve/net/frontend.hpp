// TCP network frontend for InferenceServer: one event-loop thread
// multiplexing every connection (epoll on Linux, poll elsewhere), decoding
// length-prefixed request frames straight into slab-backed tensors and
// feeding them to the server through the non-blocking submit_async path.
//
// Threading model — the invariants everything rests on:
//   - ALL socket I/O (accept, read, write, close, readiness bookkeeping)
//     happens on the loop thread. Nothing else ever touches an fd.
//   - Server worker threads run the completions. A completion only encodes
//     the response frame, appends it to the connection's outbox (under the
//     outbox mutex) and rings the loop's wake fd; the loop thread drains
//     the wake list and does the actual writes. Completions capture
//     shared_ptr<Conn> and shared_ptr<WakeState> — never the frontend Impl
//     — so a frontend torn down with requests still in flight is safe: the
//     straggler completion appends to an orphaned outbox and rings an
//     eventfd the dead loop will never read, then everything refcounts
//     away. The wake fd lives in WakeState precisely so its descriptor
//     cannot be closed and reused while a completion might still write it.
//   - The request payload is read directly into a vector<float> acquired
//     from the SlabPool; that vector becomes the request Tensor with zero
//     copies. Rejected requests and encoded response logits return their
//     storage to the pool (see slab.hpp).
//
// The listener binds to 127.0.0.1 only: this is a benchmark/test harness
// frontend, not a hardened public endpoint.
#pragma once

#include <cstdint>
#include <memory>

#include "serve/server.hpp"

namespace wa::serve::net {

struct FrontendOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the real one with port()
  int backlog = 128;
  /// Per-frame cap; a request announcing a larger body gets kBadRequest and
  /// the connection is closed (the stream can't be resynchronized).
  std::size_t max_frame_bytes = 64u << 20;
  /// SlabPool byte cap for recycled request/response storage.
  std::size_t max_pooled_bytes = 64u << 20;
};

class NetFrontend {
 public:
  /// Binds and starts the loop thread immediately; throws std::runtime_error
  /// when the socket can't be created/bound. `server` must outlive stop().
  explicit NetFrontend(InferenceServer& server, FrontendOptions opts = {});
  ~NetFrontend();
  NetFrontend(const NetFrontend&) = delete;
  NetFrontend& operator=(const NetFrontend&) = delete;

  /// Bound port (resolved when options asked for an ephemeral one).
  std::uint16_t port() const;

  /// Close the listener and every connection, join the loop thread.
  /// Idempotent; the destructor calls it. In-flight dispatches inside the
  /// server keep running — their completions write into orphaned outboxes
  /// and are dropped with them.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wa::serve::net
