#include "serve/net/protocol.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wa::serve::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

/// Patch the u32 length prefix once the body size is known. A body beyond
/// u32 range would silently truncate the prefix and desynchronize the
/// stream, so refuse to build the frame instead.
void seal_frame(std::vector<std::uint8_t>& frame) {
  const std::uint64_t size = frame.size() - 4;
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("frame body of " + std::to_string(size) +
                            " bytes exceeds the u32 length prefix");
  }
  const auto body = static_cast<std::uint32_t>(size);
  std::memcpy(frame.data(), &body, sizeof body);
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kQueueFull: return "queue_full";
    case Status::kDeadlineInfeasible: return "deadline_infeasible";
    case Status::kUnknownModel: return "unknown_model";
    case Status::kShutdown: return "shutdown";
    case Status::kBadRequest: return "bad_request";
    case Status::kForwardError: return "forward_error";
  }
  return "unknown";
}

Status status_from_admission(Admission a) {
  switch (a) {
    case Admission::kAccepted: return Status::kOk;
    case Admission::kQueueFull: return Status::kQueueFull;
    case Admission::kDeadlineInfeasible: return Status::kDeadlineInfeasible;
    case Admission::kUnknownModel: return Status::kUnknownModel;
    case Admission::kShutdown: return Status::kShutdown;
  }
  return Status::kBadRequest;
}

std::string parse_request_head(std::span<const std::uint8_t> head, RequestHead& out) {
  if (head.size() < kRequestHeadBytes) return "request head truncated";
  const std::uint8_t* p = head.data();
  if (load_u32(p) != kRequestMagic) return "bad request magic";
  if (p[4] != kProtocolVersion) {
    return "unsupported protocol version " + std::to_string(int{p[4]});
  }
  if (p[5] >= kPriorityClasses) return "bad priority " + std::to_string(int{p[5]});
  out.priority = static_cast<Priority>(p[5]);
  out.ndim = p[6];
  out.model_len = p[7];
  if (out.ndim == 0 || out.ndim > kMaxNdim) {
    return "bad ndim " + std::to_string(int{out.ndim});
  }
  if (out.model_len == 0) return "empty model name";
  out.request_id = load_u64(p + 8);
  out.deadline_us = load_u32(p + 16);
  return {};
}

std::string parse_request_meta(std::span<const std::uint8_t> meta, const RequestHead& h,
                               std::string& model, Shape& dims) {
  if (meta.size() < request_meta_bytes(h)) return "request metadata truncated";
  model.assign(reinterpret_cast<const char*>(meta.data()), h.model_len);
  dims.clear();
  dims.reserve(h.ndim);
  const std::uint8_t* p = meta.data() + h.model_len;
  for (std::size_t d = 0; d < h.ndim; ++d, p += 8) {
    const std::int64_t v = load_i64(p);
    if (v <= 0) return "non-positive dim " + std::to_string(v);
    dims.push_back(v);
  }
  return {};
}

std::vector<std::uint8_t> encode_request(std::uint64_t request_id, std::string_view model,
                                         const Tensor& input, SubmitOptions opts) {
  if (model.empty() || model.size() > kMaxModelLen) {
    throw std::invalid_argument("encode_request: model name length " +
                                std::to_string(model.size()) + " not in [1, 255]");
  }
  if (input.dim() < 1 || static_cast<std::size_t>(input.dim()) > kMaxNdim) {
    throw std::invalid_argument("encode_request: tensor rank " + std::to_string(input.dim()) +
                                " not in [1, " + std::to_string(kMaxNdim) + "]");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + kRequestHeadBytes + model.size() + input.dim() * 8 + input.numel() * 4);
  put_u32(frame, 0);  // length prefix, sealed below
  put_u32(frame, kRequestMagic);
  frame.push_back(kProtocolVersion);
  frame.push_back(static_cast<std::uint8_t>(opts.priority));
  frame.push_back(static_cast<std::uint8_t>(input.dim()));
  frame.push_back(static_cast<std::uint8_t>(model.size()));
  put_u64(frame, request_id);
  put_u32(frame, opts.deadline_us < 0 ? 0u : static_cast<std::uint32_t>(std::min<std::int64_t>(
                                                 opts.deadline_us, UINT32_MAX)));
  frame.insert(frame.end(), model.begin(), model.end());
  for (const std::int64_t d : input.shape()) put_i64(frame, d);
  const auto* payload = reinterpret_cast<const std::uint8_t*>(input.raw());
  frame.insert(frame.end(), payload, payload + input.numel() * sizeof(float));
  seal_frame(frame);
  return frame;
}

std::vector<std::uint8_t> encode_ok_response(std::uint64_t request_id, const Tensor& logits) {
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + kResponseHeadBytes + logits.dim() * 8 + logits.numel() * 4);
  put_u32(frame, 0);
  put_u32(frame, kResponseMagic);
  frame.push_back(static_cast<std::uint8_t>(Status::kOk));
  frame.push_back(static_cast<std::uint8_t>(logits.dim()));
  put_u16(frame, 0);
  put_u64(frame, request_id);
  for (const std::int64_t d : logits.shape()) put_i64(frame, d);
  const auto* payload = reinterpret_cast<const std::uint8_t*>(logits.raw());
  frame.insert(frame.end(), payload, payload + logits.numel() * sizeof(float));
  seal_frame(frame);
  return frame;
}

std::vector<std::uint8_t> encode_error_response(std::uint64_t request_id, Status status,
                                                std::string_view msg) {
  msg = msg.substr(0, 65535);
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + kResponseHeadBytes + 2 + msg.size());
  put_u32(frame, 0);
  put_u32(frame, kResponseMagic);
  frame.push_back(static_cast<std::uint8_t>(status));
  frame.push_back(0);  // ndim unused on the error path
  put_u16(frame, 0);
  put_u64(frame, request_id);
  put_u16(frame, static_cast<std::uint16_t>(msg.size()));
  frame.insert(frame.end(), msg.begin(), msg.end());
  seal_frame(frame);
  return frame;
}

std::string decode_response(std::span<const std::uint8_t> body, Response& out) {
  if (body.size() < kResponseHeadBytes) return "response head truncated";
  const std::uint8_t* p = body.data();
  if (load_u32(p) != kResponseMagic) return "bad response magic";
  if (p[4] > static_cast<std::uint8_t>(Status::kForwardError)) {
    return "unknown status " + std::to_string(int{p[4]});
  }
  out.status = static_cast<Status>(p[4]);
  const std::uint8_t ndim = p[5];
  out.request_id = load_u64(p + 8);
  out.error.clear();
  out.logits = Tensor();
  std::span<const std::uint8_t> rest = body.subspan(kResponseHeadBytes);
  if (out.status != Status::kOk) {
    if (rest.size() < 2) return "error message length truncated";
    const std::uint16_t len = load_u16(rest.data());
    if (rest.size() < 2u + len) return "error message truncated";
    out.error.assign(reinterpret_cast<const char*>(rest.data() + 2), len);
    return {};
  }
  if (ndim == 0 || ndim > kMaxNdim) return "bad response ndim " + std::to_string(int{ndim});
  if (rest.size() < ndim * 8u) return "response dims truncated";
  Shape dims;
  dims.reserve(ndim);
  for (std::size_t d = 0; d < ndim; ++d) {
    const std::int64_t v = load_i64(rest.data() + d * 8);
    if (v <= 0) return "non-positive response dim " + std::to_string(v);
    dims.push_back(v);
  }
  rest = rest.subspan(ndim * 8u);
  // Overflow-safe product: the payload present in the body bounds any
  // legitimate element count, so cap the product there.
  std::uint64_t numel = 0;
  if (!checked_numel(dims, rest.size() / sizeof(float), numel) ||
      rest.size() != numel * sizeof(float)) {
    return "response payload size mismatch";
  }
  std::vector<float> values(static_cast<std::size_t>(numel));
  std::memcpy(values.data(), rest.data(), rest.size());
  out.logits = Tensor(std::move(dims), std::move(values));
  return {};
}

}  // namespace wa::serve::net
