// Capacity-bucketed recycling pool for the float slabs that back network
// request and response tensors.
//
// The frontend's decoder lands every request payload directly into a
// vector<float> acquired here; that vector becomes the request Tensor's
// storage with no further copy, rides through the server, and — for
// rejected requests and for response logits after they are encoded onto the
// wire — comes back via Tensor::take_data() so its heap allocation is
// reused by the next request of a similar size. Buckets are power-of-two
// capacity classes: a vector whose capacity is in [2^b, 2^(b+1)) lives in
// bucket b, and acquire(n) pops from bucket ceil(log2(n)), whose every
// entry is guaranteed to hold n floats without reallocating. Total pooled
// bytes are capped; beyond the cap a released slab is simply freed.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wa::serve::net {

class SlabPool {
 public:
  explicit SlabPool(std::size_t max_pooled_bytes = 64u << 20)
      : max_pooled_bytes_(max_pooled_bytes) {}

  /// A vector with size() == numel and no reallocation needed; recycled
  /// storage when a large-enough slab is pooled, a fresh allocation
  /// otherwise.
  std::vector<float> acquire(std::size_t numel) {
    if (numel == 0) return {};
    const std::size_t b = bucket_of(numel);
    if (b >= kBuckets) {  // absurd request: serve it unpooled
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::vector<float>(numel);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto& shelf = buckets_[b];
      if (!shelf.empty()) {
        std::vector<float> v = std::move(shelf.back());
        shelf.pop_back();
        pooled_bytes_ -= v.capacity() * sizeof(float);
        v.resize(numel);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::vector<float> v;
    // Round the allocation up to the bucket boundary so the slab is
    // acquirable by every future request in its class, not just ones no
    // bigger than this first tenant.
    v.reserve(std::size_t{1} << b);
    v.resize(numel);
    return v;
  }

  /// Return a slab (typically from Tensor::take_data()). Dropped when empty
  /// or when pooling it would exceed the byte cap.
  void release(std::vector<float> v) {
    const std::size_t bytes = v.capacity() * sizeof(float);
    if (v.capacity() == 0) return;
    const std::size_t b = floor_bucket(v.capacity());
    if (b >= kBuckets) return;
    std::lock_guard<std::mutex> lk(mu_);
    if (pooled_bytes_ + bytes > max_pooled_bytes_) return;  // v frees on scope exit
    pooled_bytes_ += bytes;
    v.clear();
    buckets_[b].push_back(std::move(v));
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pooled_bytes_;
  }

 private:
  /// ceil(log2(n)): smallest b with 2^b >= n.
  static std::size_t bucket_of(std::size_t n) {
    return static_cast<std::size_t>(std::bit_width(n - 1));
  }
  /// floor(log2(cap)): the class whose every member holds 2^b floats.
  static std::size_t floor_bucket(std::size_t cap) {
    return static_cast<std::size_t>(std::bit_width(cap)) - 1;
  }

  static constexpr std::size_t kBuckets = 40;  // up to 2^39 floats — plenty

  mutable std::mutex mu_;
  std::size_t pooled_bytes_ = 0;
  const std::size_t max_pooled_bytes_;
  std::array<std::vector<std::vector<float>>, kBuckets> buckets_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace wa::serve::net
