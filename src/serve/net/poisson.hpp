// Seeded open-loop Poisson arrival process for the load harness.
//
// Open-loop means the arrival schedule is fixed up front and never reacts
// to the server: gap k is drawn from Exp(rate) and request k's send time is
// the running sum of the gaps, so a slow server accumulates queueing delay
// instead of silently throttling the offered load (the closed-loop fallacy
// that makes overloaded systems look fine). The exponential transform is
// written out by hand — std::exponential_distribution's algorithm is
// implementation-defined, so only the manual `-log1p(-u)/rate` over
// mt19937_64's standardized output stream makes a (seed, rate) pair produce
// the same byte-identical schedule on every toolchain. That reproducibility
// is load-bearing: BENCH_serve.json runs are comparable across machines and
// the harness test pins exact gap values.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>

namespace wa::serve::net {

class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, std::uint64_t seed) : rng_(seed), rate_(rate_per_sec) {
    if (!(rate_per_sec > 0.0)) {
      throw std::invalid_argument("PoissonArrivals: rate must be positive");
    }
  }

  /// Next inter-arrival gap in seconds: Exp(rate) via inverse transform.
  /// The top 53 bits of the engine's output give u uniform in [0, 1);
  /// -log1p(-u) maps it to Exp(1) without ever taking log(0).
  double next_gap_sec() {
    const double u = static_cast<double>(rng_() >> 11) * 0x1.0p-53;
    return -std::log1p(-u) / rate_;
  }

  /// Absolute send offset of the next request in nanoseconds from the
  /// stream's start (the running sum of the gaps).
  std::uint64_t next_send_ns() {
    elapsed_sec_ += next_gap_sec();
    return static_cast<std::uint64_t>(elapsed_sec_ * 1e9);
  }

 private:
  std::mt19937_64 rng_;
  double rate_;
  double elapsed_sec_ = 0.0;
};

}  // namespace wa::serve::net
