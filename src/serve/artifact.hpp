// .wam model artifacts: a durable binary form of a compiled Int8Pipeline.
//
// The paper's deployment story ends with an integer-only pipeline; serving
// at scale additionally needs that pipeline to survive the process that
// compiled it. A .wam file serializes the *compiled* stage graph — StageIO
// wiring, packed/transformed int8 weight caches (U = Qx(G g Gᵀ) levels, the
// repacked GEMM operands), fixed-point multipliers, integer batch-norm
// affines and every frozen scale — so load_pipeline() reconstructs a
// pipeline that is bit-identical to the saved one *without recomputing
// anything*: the weight_transforms / weight_repacks counters stay flat
// across a load, and the first forward after load is already on the cached
// hot path.
//
// Layout: a fixed header (magic, format version, payload byte count, FNV-1a
// 64 checksum of the payload) followed by the stage list. The loader
// validates magic, version and checksum before parsing a single stage, so
// truncated, corrupted or foreign files are rejected with a clear
// std::runtime_error instead of materializing a garbage pipeline.
//
// Version 2 extends every stage record with its fused epilogue ops and
// appends the optimizer's static memory plan, so an optimized pipeline
// round-trips with its plan intact and serves with the planned peak-memory
// behavior immediately after load. Version 3 extends Winograd conv stages
// with the channel-blocked offset-binary U cache (u_blocked +
// padded_in_channels) that the fused streaming executor consumes, so the
// first forward after load hits the blocked hot path without re-packing.
// Version 4 appends the per-tap scale vectors of each Winograd stage (U/V/M
// tap vectors plus the per-tap U-cache scales) — empty vectors mean
// per-tensor, so legacy scalar stages cost four empty counts. Version 5
// (the current writer) covers the whole model zoo: conv stages gain groups
// and stride fields, the old "is winograd" bool byte widens into a
// cache-kind byte (0 = im2row, 1 = winograd, 2 = strided polyphase
// winograd — pre-v5 payloads only ever contain 0/1), Winograd bodies append
// the whole-tap-zero sparse skip mask from winograd_prune, kind-2 bodies
// carry the F(m,2) u00 cache plus the rect-phase im2row weights, and a new
// kConcat stage tag serializes channel-concat joins (SqueezeNet fire
// modules). Version 1-4 artifacts remain loadable bit-for-bit — the
// checked-in fixtures tests/data/golden_v1.wam, golden_v3.wam and
// golden_v4.wam lock that promise, the loader rebuilds the blocked U from
// the flat levels for v1/v2, pre-v4 stages load with empty tap vectors
// (their scalar scales widen to constant per-tap vectors only inside
// kernels that want one), and pre-v5 stages load as dense stride-1
// ungrouped with an empty tap mask — and a plan or cache section that fails
// validation rejects the artifact instead of executing with corrupt state.
//
// The byte-level specification of the format — field-by-field stage bodies,
// integer encodings, evolution rules for new tags and versions — lives in
// docs/WAM_FORMAT.md; keep that document in lockstep with this file (any
// payload change bumps kWamVersion there and here).
#pragma once

#include <iosfwd>
#include <string>

#include "deploy/pipeline.hpp"

namespace wa::serve {

/// Current writer version. Loaders accept this and all older versions
/// listed in docs/WAM_FORMAT.md (currently v1 through v4), rejecting
/// anything newer or unknown.
constexpr std::uint32_t kWamVersion = 5;

void save_pipeline(std::ostream& os, const deploy::Int8Pipeline& pipe);
void save_pipeline(const std::string& path, const deploy::Int8Pipeline& pipe);

deploy::Int8Pipeline load_pipeline(std::istream& is);
deploy::Int8Pipeline load_pipeline(const std::string& path);

}  // namespace wa::serve
