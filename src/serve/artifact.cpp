#include "serve/artifact.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/io.hpp"

namespace wa::serve {

using deploy::AddStage;
using deploy::AvgPoolStage;
using deploy::BnStage;
using deploy::ConcatStage;
using deploy::ConvStage;
using deploy::EpilogueOp;
using deploy::FlattenStage;
using deploy::Int8Pipeline;
using deploy::LinearStage;
using deploy::MemoryPlan;
using deploy::PoolStage;
using deploy::ReluStage;
using deploy::RequantStage;
using deploy::Stage;
using deploy::StageIO;

namespace {

constexpr std::uint32_t kWamMagic = 0x5741'4d50;  // "WAMP" (pipeline artifact)

// Stage tags are part of the on-disk format: append-only, never renumber.
enum class Tag : std::uint8_t {
  kConv = 0,
  kPool = 1,
  kFlatten = 2,
  kAvgPool = 3,
  kLinear = 4,
  kBn = 5,
  kAdd = 6,
  kRelu = 7,     // v2
  kRequant = 8,  // v2
  kConcat = 9,   // v5
};

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void save_optional_tensor(std::ostream& os, const Tensor& t) {
  save_pod(os, static_cast<std::uint8_t>(t.empty() ? 0 : 1));
  if (!t.empty()) save_tensor(os, t);
}

Tensor load_optional_tensor(std::istream& is) {
  return load_pod<std::uint8_t>(is) != 0 ? load_tensor(is) : Tensor();
}

void save_ratio(std::ostream& os, const deploy::RequantRatio& r) {
  save_pod(os, r.mult.m0);
  save_pod(os, static_cast<std::int32_t>(r.mult.shift));
  save_pod(os, static_cast<std::uint8_t>(r.identity ? 1 : 0));
}

deploy::RequantRatio load_ratio(std::istream& is) {
  deploy::RequantRatio r;
  r.mult.m0 = load_pod<std::int32_t>(is);
  r.mult.shift = static_cast<int>(load_pod<std::int32_t>(is));
  r.identity = load_pod<std::uint8_t>(is) != 0;
  return r;
}

/// The integer-affine kernel computes 1 << (exp - 1) and scales the bias by
/// 2^exp; prepare_channel_affine_s8 only ever emits exp in [0, 46]. A
/// checksum-valid artifact whose affine escaped that range would reach
/// shift UB at the first forward, so reject it at load instead.
void check_affine_tables(const deploy::ChannelAffineS8& a, const char* what) {
  const std::size_t c = a.m0.size();
  if (c == 0 || a.exp.size() != c || a.bias_q.size() != c) {
    throw std::runtime_error(std::string("load_pipeline: ") + what +
                             " channel counts disagree");
  }
  for (const std::int8_t e : a.exp) {
    if (e < 0 || e > 46) {
      throw std::runtime_error(std::string("load_pipeline: ") + what +
                               " shift exponent out of range (0..46)");
    }
  }
}

// ---- per-stage bodies -------------------------------------------------------

void save_conv(std::ostream& os, const ConvStage& st) {
  if (!st.prepared()) {
    // nodes() only exposes pushed (hence prepared) stages; a raw stage here
    // would deserialize without its weight caches and run nothing.
    throw std::runtime_error("save_pipeline: conv stage was never prepared");
  }
  save_pod(os, static_cast<std::uint8_t>(st.algo));
  save_pod(os, st.in_channels);
  save_pod(os, st.out_channels);
  save_pod(os, st.kernel);
  save_pod(os, st.pad);
  save_pod(os, st.groups);  // v5
  save_pod(os, st.stride);  // v5
  save_pod(os, st.input_scale);
  save_pod(os, st.output_scale);
  save_pod(os, static_cast<std::uint8_t>(st.relu_after ? 1 : 0));
  save_pod(os, st.stage_scales.weights_transformed);
  save_pod(os, st.stage_scales.input_transformed);
  save_pod(os, st.stage_scales.hadamard);
  save_pod(os, st.stage_scales.output);

  // v5 widened the v1-v4 "is winograd" bool byte into a cache-kind byte:
  // 0 = im2row, 1 = winograd, 2 = strided polyphase winograd. Pre-v5
  // payloads only ever contain 0/1, so old semantics are preserved.
  const std::uint8_t kind = !st.strided_cache.empty() ? 2 : (!st.wino_cache.empty() ? 1 : 0);
  save_pod(os, kind);
  if (kind == 1) {
    save_pod(os, static_cast<std::int32_t>(st.transforms.m));
    save_pod(os, static_cast<std::int32_t>(st.transforms.r));
    save_pod(os, static_cast<std::int32_t>(st.transforms.tile));
    save_tensor(os, st.transforms.g_mat);
    save_tensor(os, st.transforms.bt_mat);
    save_tensor(os, st.transforms.at_mat);
    save_vector(os, st.wino_cache.u_q);
    save_pod(os, st.wino_cache.scale);
    save_pod(os, st.wino_cache.out_channels);
    save_pod(os, st.wino_cache.in_channels);
    save_pod(os, st.wino_cache.tile);
    // v3: the pre-blocked offset-binary U the fused streaming executor
    // consumes (backend/conv_kernels_s8.hpp). Stored so a load lands on the
    // blocked hot path without re-packing; pre-v3 readers never see it.
    save_vector(os, st.wino_cache.u_blocked);
    save_pod(os, st.wino_cache.padded_in_channels);
    // v4: per-tap scale vectors for the transform-domain stages plus the
    // per-tap scales the U cache was baked at. Empty = per-tensor (the
    // scalar stage_scales fields rule), so legacy stages cost four empty
    // counts and nothing else.
    save_vector(os, st.stage_scales.weights_transformed_taps);
    save_vector(os, st.stage_scales.input_transformed_taps);
    save_vector(os, st.stage_scales.hadamard_taps);
    save_vector(os, st.wino_cache.tap_scales);
    // v5: whole-tap-zero skip flags from winograd_prune ([t*t] or empty =
    // dense). Carried so a pruned model skips its tap GEMMs after load too.
    save_vector(os, st.wino_cache.tap_mask);
  } else if (kind == 2) {
    // v5: strided polyphase cache — an F(m,2) Winograd sub-problem over the
    // even/even weight phase plus one im2row GEMM over the rect phases.
    save_pod(os, static_cast<std::int32_t>(st.transforms.m));
    save_pod(os, static_cast<std::int32_t>(st.transforms.r));
    save_pod(os, static_cast<std::int32_t>(st.transforms.tile));
    save_tensor(os, st.transforms.g_mat);
    save_tensor(os, st.transforms.bt_mat);
    save_tensor(os, st.transforms.at_mat);
    save_vector(os, st.strided_cache.u00.u_q);
    save_pod(os, st.strided_cache.u00.scale);
    save_pod(os, st.strided_cache.u00.out_channels);
    save_pod(os, st.strided_cache.u00.in_channels);
    save_pod(os, st.strided_cache.u00.tile);
    save_vector(os, st.strided_cache.u00.u_blocked);
    save_pod(os, st.strided_cache.u00.padded_in_channels);
    save_vector(os, st.strided_cache.rect_wt);
    save_pod(os, st.strided_cache.rect_scale);
  } else {
    save_vector(os, st.im2row_cache.wt);
    save_pod(os, st.im2row_cache.scale);
    save_pod(os, st.im2row_cache.out_channels);
    save_pod(os, st.im2row_cache.patch);
  }
  save_optional_tensor(os, st.bias);
}

ConvStage load_conv(std::istream& is, std::uint32_t version) {
  ConvStage st;
  const auto algo = load_pod<std::uint8_t>(is);
  if (algo > static_cast<std::uint8_t>(nn::ConvAlgo::kWinograd6)) {
    throw std::runtime_error("load_pipeline: unknown conv algorithm tag");
  }
  st.algo = static_cast<nn::ConvAlgo>(algo);
  st.in_channels = load_pod<std::int64_t>(is);
  st.out_channels = load_pod<std::int64_t>(is);
  st.kernel = load_pod<std::int64_t>(is);
  st.pad = load_pod<std::int64_t>(is);
  if (version >= 5) {
    st.groups = load_pod<std::int64_t>(is);
    st.stride = load_pod<std::int64_t>(is);
    if (st.groups < 1 || st.in_channels % st.groups != 0 ||
        st.out_channels % st.groups != 0) {
      throw std::runtime_error("load_pipeline: conv groups must divide both channel counts");
    }
    if (st.stride < 1) throw std::runtime_error("load_pipeline: conv stride must be >= 1");
  }
  // Pre-v5 stages are always dense stride-1 ungrouped (the defaults).
  st.input_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.relu_after = load_pod<std::uint8_t>(is) != 0;
  st.stage_scales.weights_transformed = load_pod<float>(is);
  st.stage_scales.input_transformed = load_pod<float>(is);
  st.stage_scales.hadamard = load_pod<float>(is);
  st.stage_scales.output = load_pod<float>(is);

  // v1-v4 wrote a 0/1 "is winograd" bool here; v5 widened the same byte into
  // a cache-kind: 0 = im2row, 1 = winograd, 2 = strided polyphase winograd.
  const auto kind = load_pod<std::uint8_t>(is);
  if (kind > (version >= 5 ? 2 : 1)) {
    throw std::runtime_error("load_pipeline: unknown conv cache kind");
  }
  if ((kind != 0) != nn::is_winograd(st.algo)) {
    throw std::runtime_error("load_pipeline: conv cache kind disagrees with its algorithm");
  }
  if (kind == 2 && (st.stride != 2 || st.kernel != 3 || st.groups != 1)) {
    throw std::runtime_error(
        "load_pipeline: strided Winograd cache requires stride 2, 3x3 kernel, groups 1");
  }
  if (kind == 1 && st.stride != 1) {
    throw std::runtime_error("load_pipeline: dense Winograd cache requires stride 1");
  }
  if (kind == 1) {
    st.transforms.m = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.r = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.tile = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.g_mat = load_tensor(is);
    st.transforms.bt_mat = load_tensor(is);
    st.transforms.at_mat = load_tensor(is);
    st.wino_cache.u_q = load_vector<std::int8_t>(is);
    st.wino_cache.scale = load_pod<float>(is);
    st.wino_cache.out_channels = load_pod<std::int64_t>(is);
    st.wino_cache.in_channels = load_pod<std::int64_t>(is);
    st.wino_cache.tile = load_pod<std::int64_t>(is);
    // The checksum only proves the bytes are the writer's; a buggy or
    // crafted writer could still encode an internally inconsistent stage,
    // and the prepared kernels index u_q by these dimensions unchecked.
    st.wino_cache.groups = st.groups;
    const std::int64_t t = st.wino_cache.tile;
    // Grouped stages cache U as [t*t, K, C/g]: in_channels is per-group.
    if (st.wino_cache.empty() || t != st.transforms.tile ||
        st.transforms.tile != st.transforms.m + st.transforms.r - 1 ||
        st.transforms.r != st.kernel ||
        st.wino_cache.out_channels != st.out_channels ||
        st.wino_cache.in_channels * st.groups != st.in_channels ||
        static_cast<std::int64_t>(st.wino_cache.u_q.size()) !=
            t * t * st.out_channels * st.wino_cache.in_channels) {
      throw std::runtime_error("load_pipeline: Winograd cache disagrees with its stage geometry");
    }
    if (version >= 3) {
      st.wino_cache.u_blocked = load_vector<std::uint8_t>(is);
      st.wino_cache.padded_in_channels = load_pod<std::int64_t>(is);
      // Same philosophy as the u_q check above: the fused executor indexes
      // u_blocked by [t², K, Cpad] unchecked, so the dimensions must agree
      // before any forward runs. Values are the writer's responsibility
      // (covered by the payload checksum), exactly like u_q's levels.
      const std::int64_t cpad =
          (st.wino_cache.in_channels + backend::kWinoChannelBlock - 1) /
          backend::kWinoChannelBlock * backend::kWinoChannelBlock;
      if (st.wino_cache.padded_in_channels != cpad ||
          static_cast<std::int64_t>(st.wino_cache.u_blocked.size()) !=
              t * t * st.out_channels * cpad) {
        throw std::runtime_error(
            "load_pipeline: blocked Winograd cache disagrees with its stage geometry");
      }
    } else {
      // v1/v2 artifacts predate the blocked layout; rebuild it from the flat
      // levels so old models still land on the fused hot path after load.
      backend::build_blocked_u(st.wino_cache);
    }
    if (version >= 4) {
      st.stage_scales.weights_transformed_taps = load_vector<float>(is);
      st.stage_scales.input_transformed_taps = load_vector<float>(is);
      st.stage_scales.hadamard_taps = load_vector<float>(is);
      st.wino_cache.tap_scales = load_vector<float>(is);
      // Same philosophy as the cache checks above: the executor indexes the
      // tap vectors by [t²] unchecked and trusts U levels to match the
      // recorded tap scales, so shape and consistency must hold before any
      // forward runs.
      const auto check_taps = [&](const std::vector<float>& v, const char* name) {
        if (v.empty()) return;
        if (static_cast<std::int64_t>(v.size()) != t * t) {
          throw std::runtime_error("load_pipeline: " + std::string(name) +
                                   " tap-scale vector disagrees with the stage's t*t");
        }
        for (const float s : v) {
          if (!(s > 0.F)) {
            throw std::runtime_error("load_pipeline: " + std::string(name) +
                                     " tap-scale vector has a non-positive entry");
          }
        }
      };
      check_taps(st.stage_scales.weights_transformed_taps, "weights_transformed");
      check_taps(st.stage_scales.input_transformed_taps, "input_transformed");
      check_taps(st.stage_scales.hadamard_taps, "hadamard");
      check_taps(st.wino_cache.tap_scales, "U-cache");
      if (st.stage_scales.weights_transformed_taps != st.wino_cache.tap_scales) {
        throw std::runtime_error(
            "load_pipeline: per-tap U stage scales disagree with the cached U's tap scales");
      }
    }
    if (version >= 5) {
      // Whole-tap-zero skip flags ([t*t] or empty = dense). Both executors
      // branch on these unchecked, so the length must agree before a forward.
      st.wino_cache.tap_mask = load_vector<std::uint8_t>(is);
      if (!st.wino_cache.tap_mask.empty() &&
          static_cast<std::int64_t>(st.wino_cache.tap_mask.size()) != t * t) {
        throw std::runtime_error(
            "load_pipeline: sparse tap mask disagrees with the stage's t*t");
      }
    }
    // Pre-v4 stages keep empty tap vectors: per-tensor semantics — the
    // scalar scales widen to constant per-tap vectors only inside kernels
    // that want one. Pre-v5 stages keep an empty (dense) tap mask.
  } else if (kind == 2) {
    st.transforms.m = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.r = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.tile = static_cast<int>(load_pod<std::int32_t>(is));
    st.transforms.g_mat = load_tensor(is);
    st.transforms.bt_mat = load_tensor(is);
    st.transforms.at_mat = load_tensor(is);
    auto& sc = st.strided_cache;
    sc.u00.u_q = load_vector<std::int8_t>(is);
    sc.u00.scale = load_pod<float>(is);
    sc.u00.out_channels = load_pod<std::int64_t>(is);
    sc.u00.in_channels = load_pod<std::int64_t>(is);
    sc.u00.tile = load_pod<std::int64_t>(is);
    sc.u00.u_blocked = load_vector<std::uint8_t>(is);
    sc.u00.padded_in_channels = load_pod<std::int64_t>(is);
    sc.rect_wt = load_vector<std::int8_t>(is);
    sc.rect_scale = load_pod<float>(is);
    sc.out_channels = st.out_channels;
    sc.in_channels = st.in_channels;
    // The polyphase executor indexes u00 as [t*t, K, C] (F(m,2): r == 2, not
    // the stage's 3x3 kernel) and rect_wt as [5*C, K], all unchecked.
    const std::int64_t t = sc.u00.tile;
    const std::int64_t cpad =
        (st.in_channels + backend::kWinoChannelBlock - 1) / backend::kWinoChannelBlock *
        backend::kWinoChannelBlock;
    if (sc.empty() || st.transforms.r != 2 || t != st.transforms.tile ||
        st.transforms.tile != st.transforms.m + 1 ||
        sc.u00.out_channels != st.out_channels || sc.u00.in_channels != st.in_channels ||
        static_cast<std::int64_t>(sc.u00.u_q.size()) !=
            t * t * st.out_channels * st.in_channels ||
        sc.u00.padded_in_channels != cpad ||
        static_cast<std::int64_t>(sc.u00.u_blocked.size()) != t * t * st.out_channels * cpad ||
        static_cast<std::int64_t>(sc.rect_wt.size()) != 5 * st.in_channels * st.out_channels ||
        !(sc.u00.scale > 0.F) || !(sc.rect_scale > 0.F)) {
      throw std::runtime_error(
          "load_pipeline: strided Winograd cache disagrees with its stage geometry");
    }
  } else {
    st.im2row_cache.wt = load_vector<std::int8_t>(is);
    st.im2row_cache.scale = load_pod<float>(is);
    st.im2row_cache.out_channels = load_pod<std::int64_t>(is);
    st.im2row_cache.patch = load_pod<std::int64_t>(is);
    st.im2row_cache.groups = st.groups;
    // Grouped stages pack wt as groups x [patch, K/g]: out_channels and
    // patch are per-group values (for pre-v5 payloads groups == 1, so these
    // checks collapse to the original dense ones).
    if (st.im2row_cache.empty() ||
        st.im2row_cache.out_channels * st.groups != st.out_channels ||
        st.im2row_cache.patch != (st.in_channels / st.groups) * st.kernel * st.kernel ||
        static_cast<std::int64_t>(st.im2row_cache.wt.size()) !=
            st.groups * st.im2row_cache.patch * st.im2row_cache.out_channels) {
      throw std::runtime_error("load_pipeline: im2row cache disagrees with its stage geometry");
    }
  }
  st.bias = load_optional_tensor(is);
  if (!st.bias.empty() && st.bias.numel() != st.out_channels) {
    throw std::runtime_error("load_pipeline: conv bias/channel mismatch");
  }
  return st;
}

void save_linear(std::ostream& os, const LinearStage& st) {
  if (!st.prepared()) throw std::runtime_error("save_pipeline: linear stage was never prepared");
  save_pod(os, st.input_scale);
  save_pod(os, st.output_scale);
  save_pod(os, static_cast<std::uint8_t>(st.relu_after ? 1 : 0));
  save_vector(os, st.packed.wt);
  save_pod(os, st.packed.scale);
  save_pod(os, st.packed.out_features);
  save_pod(os, st.packed.in_features);
  save_optional_tensor(os, st.bias);
}

LinearStage load_linear(std::istream& is) {
  LinearStage st;
  st.input_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.relu_after = load_pod<std::uint8_t>(is) != 0;
  st.packed.wt = load_vector<std::int8_t>(is);
  st.packed.scale = load_pod<float>(is);
  st.packed.out_features = load_pod<std::int64_t>(is);
  st.packed.in_features = load_pod<std::int64_t>(is);
  if (st.packed.empty() || st.packed.out_features <= 0 || st.packed.in_features <= 0 ||
      static_cast<std::int64_t>(st.packed.wt.size()) !=
          st.packed.in_features * st.packed.out_features) {
    throw std::runtime_error("load_pipeline: linear weights disagree with their features");
  }
  st.bias = load_optional_tensor(is);
  if (!st.bias.empty() && st.bias.numel() != st.packed.out_features) {
    throw std::runtime_error("load_pipeline: linear bias/feature mismatch");
  }
  return st;
}

void save_bn(std::ostream& os, const BnStage& st) {
  if (!st.prepared()) throw std::runtime_error("save_pipeline: bn stage was never prepared");
  save_pod(os, st.input_scale);
  save_pod(os, st.output_scale);
  save_pod(os, static_cast<std::uint8_t>(st.relu_after ? 1 : 0));
  save_tensor(os, st.scale);
  save_tensor(os, st.bias);
  save_vector(os, st.affine.m0);
  save_vector(os, st.affine.exp);
  save_vector(os, st.affine.bias_q);
  save_pod(os, st.affine.out_scale);
}

BnStage load_bn(std::istream& is) {
  BnStage st;
  st.input_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.relu_after = load_pod<std::uint8_t>(is) != 0;
  st.scale = load_tensor(is);
  st.bias = load_tensor(is);
  st.affine.m0 = load_vector<std::int32_t>(is);
  st.affine.exp = load_vector<std::int8_t>(is);
  st.affine.bias_q = load_vector<std::int64_t>(is);
  st.affine.out_scale = load_pod<float>(is);
  check_affine_tables(st.affine, "bn affine");
  if (st.scale.numel() != static_cast<std::int64_t>(st.affine.m0.size()) ||
      st.bias.numel() != static_cast<std::int64_t>(st.affine.m0.size())) {
    throw std::runtime_error("load_pipeline: bn affine channel counts disagree");
  }
  return st;
}

void save_add(std::ostream& os, const AddStage& st) {
  if (!st.prepared()) throw std::runtime_error("save_pipeline: add stage was never prepared");
  save_pod(os, st.lhs_scale);
  save_pod(os, st.rhs_scale);
  save_pod(os, st.output_scale);
  save_pod(os, static_cast<std::uint8_t>(st.relu_after ? 1 : 0));
  save_ratio(os, st.lhs_ratio);
  save_ratio(os, st.rhs_ratio);
}

AddStage load_add(std::istream& is) {
  AddStage st;
  st.lhs_scale = load_pod<float>(is);
  st.rhs_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.relu_after = load_pod<std::uint8_t>(is) != 0;
  st.lhs_ratio = load_ratio(is);
  st.rhs_ratio = load_ratio(is);
  st.prepared_ = true;  // the ratios above ARE the prepared state
  return st;
}

void save_concat(std::ostream& os, const ConcatStage& st) {
  if (!st.prepared()) throw std::runtime_error("save_pipeline: concat stage was never prepared");
  save_pod(os, st.lhs_scale);
  save_pod(os, st.rhs_scale);
  save_pod(os, st.output_scale);
  save_pod(os, static_cast<std::uint8_t>(st.relu_after ? 1 : 0));
  save_ratio(os, st.lhs_ratio);
  save_ratio(os, st.rhs_ratio);
}

ConcatStage load_concat(std::istream& is) {
  ConcatStage st;
  st.lhs_scale = load_pod<float>(is);
  st.rhs_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.relu_after = load_pod<std::uint8_t>(is) != 0;
  st.lhs_ratio = load_ratio(is);
  st.rhs_ratio = load_ratio(is);
  st.prepared_ = true;  // the ratios above ARE the prepared state
  return st;
}

void save_requant(std::ostream& os, const RequantStage& st) {
  if (!st.prepared()) throw std::runtime_error("save_pipeline: requant stage was never prepared");
  save_pod(os, st.input_scale);
  save_pod(os, st.output_scale);
  save_ratio(os, st.ratio);
}

RequantStage load_requant(std::istream& is) {
  RequantStage st;
  st.input_scale = load_pod<float>(is);
  st.output_scale = load_pod<float>(is);
  st.ratio = load_ratio(is);
  st.prepared_ = true;  // the ratio above IS the prepared state
  return st;
}

void save_stage(std::ostream& os, const Stage& s) {
  std::visit(
      [&os](const auto& st) {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, ConvStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kConv));
          save_conv(os, st);
        } else if constexpr (std::is_same_v<T, PoolStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kPool));
          save_pod(os, st.kernel);
          save_pod(os, st.stride);
        } else if constexpr (std::is_same_v<T, FlattenStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kFlatten));
        } else if constexpr (std::is_same_v<T, AvgPoolStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kAvgPool));
        } else if constexpr (std::is_same_v<T, LinearStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kLinear));
          save_linear(os, st);
        } else if constexpr (std::is_same_v<T, BnStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kBn));
          save_bn(os, st);
        } else if constexpr (std::is_same_v<T, AddStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kAdd));
          save_add(os, st);
        } else if constexpr (std::is_same_v<T, ReluStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kRelu));
        } else if constexpr (std::is_same_v<T, ConcatStage>) {
          save_pod(os, static_cast<std::uint8_t>(Tag::kConcat));
          save_concat(os, st);
        } else {
          save_pod(os, static_cast<std::uint8_t>(Tag::kRequant));
          save_requant(os, st);
        }
      },
      s);
}

Stage load_stage(std::istream& is, std::uint32_t version) {
  switch (static_cast<Tag>(load_pod<std::uint8_t>(is))) {
    case Tag::kConv:
      return load_conv(is, version);
    case Tag::kPool: {
      PoolStage st;
      st.kernel = load_pod<std::int64_t>(is);
      st.stride = load_pod<std::int64_t>(is);
      return st;
    }
    case Tag::kFlatten:
      return FlattenStage{};
    case Tag::kAvgPool:
      return AvgPoolStage{};
    case Tag::kLinear:
      return load_linear(is);
    case Tag::kBn:
      return load_bn(is);
    case Tag::kAdd:
      return load_add(is);
    case Tag::kRelu:
      return ReluStage{};
    case Tag::kRequant:
      return load_requant(is);
    case Tag::kConcat:
      if (version < 5) {
        throw std::runtime_error("load_pipeline: concat stage tag in a pre-v5 artifact");
      }
      return load_concat(is);
  }
  throw std::runtime_error("load_pipeline: unknown stage tag");
}

// ---- v2: fused epilogues and the static memory plan -------------------------

void save_epilogue(std::ostream& os, const std::vector<EpilogueOp>& eps) {
  save_pod(os, static_cast<std::uint32_t>(eps.size()));
  for (const EpilogueOp& ep : eps) {
    save_pod(os, static_cast<std::uint8_t>(ep.kind));
    switch (ep.kind) {
      case EpilogueOp::Kind::kRelu:
        break;
      case EpilogueOp::Kind::kRequant:
        save_ratio(os, ep.ratio);
        save_pod(os, ep.out_scale);
        break;
      case EpilogueOp::Kind::kAffine:
        save_vector(os, ep.affine.m0);
        save_vector(os, ep.affine.exp);
        save_vector(os, ep.affine.bias_q);
        save_pod(os, ep.affine.out_scale);
        save_pod(os, static_cast<std::uint8_t>(ep.relu ? 1 : 0));
        save_pod(os, ep.out_scale);
        break;
    }
  }
}

std::vector<EpilogueOp> load_epilogue(std::istream& is) {
  const auto count = load_pod<std::uint32_t>(is);
  if (count > 1024) throw std::runtime_error("load_pipeline: implausible epilogue count");
  std::vector<EpilogueOp> eps;
  eps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EpilogueOp ep;
    const auto kind = load_pod<std::uint8_t>(is);
    if (kind > static_cast<std::uint8_t>(EpilogueOp::Kind::kAffine)) {
      throw std::runtime_error("load_pipeline: unknown epilogue kind");
    }
    ep.kind = static_cast<EpilogueOp::Kind>(kind);
    switch (ep.kind) {
      case EpilogueOp::Kind::kRelu:
        break;
      case EpilogueOp::Kind::kRequant:
        ep.ratio = load_ratio(is);
        ep.out_scale = load_pod<float>(is);
        break;
      case EpilogueOp::Kind::kAffine:
        ep.affine.m0 = load_vector<std::int32_t>(is);
        ep.affine.exp = load_vector<std::int8_t>(is);
        ep.affine.bias_q = load_vector<std::int64_t>(is);
        ep.affine.out_scale = load_pod<float>(is);
        ep.relu = load_pod<std::uint8_t>(is) != 0;
        ep.out_scale = load_pod<float>(is);
        check_affine_tables(ep.affine, "fused affine");
        break;
    }
    eps.push_back(std::move(ep));
  }
  return eps;
}

void save_plan(std::ostream& os, const MemoryPlan* plan) {
  save_pod(os, static_cast<std::uint8_t>(plan != nullptr ? 1 : 0));
  if (plan == nullptr) return;
  save_vector(os, plan->reference_input);
  save_vector(os, plan->value_bytes);
  save_vector(os, plan->offsets);
  save_vector(os, plan->last_use);
  save_vector(os, plan->in_place);
  save_pod(os, plan->arena_bytes);
  save_pod(os, plan->peak_bytes);
  save_pod(os, plan->naive_peak_bytes);
}

/// Reads the plan section and attaches it. Int8Pipeline::set_plan validates
/// every field against the just-loaded schedule, so a corrupted-but-
/// checksummed plan (a buggy writer) rejects the artifact instead of
/// executing with broken in-place marks.
void load_plan(std::istream& is, Int8Pipeline& pipe) {
  if (load_pod<std::uint8_t>(is) == 0) return;
  MemoryPlan plan;
  plan.reference_input = load_vector<std::int64_t>(is);
  plan.value_bytes = load_vector<std::int64_t>(is);
  plan.offsets = load_vector<std::int64_t>(is);
  plan.last_use = load_vector<std::int32_t>(is);
  plan.in_place = load_vector<std::uint8_t>(is);
  plan.arena_bytes = load_pod<std::int64_t>(is);
  plan.peak_bytes = load_pod<std::int64_t>(is);
  plan.naive_peak_bytes = load_pod<std::int64_t>(is);
  try {
    pipe.set_plan(std::move(plan));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("load_pipeline: invalid plan section — " + std::string(e.what()));
  }
}

void save_io(std::ostream& os, const StageIO& io) {
  save_string(os, io.input);
  save_string(os, io.input2);
  save_string(os, io.output);
  save_string(os, io.label);
}

StageIO load_io(std::istream& is) {
  StageIO io;
  io.input = load_string(is);
  io.input2 = load_string(is);
  io.output = load_string(is);
  io.label = load_string(is);
  return io;
}

}  // namespace

void save_pipeline(std::ostream& os, const Int8Pipeline& pipe) {
  std::ostringstream payload(std::ios::binary);
  save_pod(payload, static_cast<std::int64_t>(pipe.size()));
  for (const Int8Pipeline::Node& node : pipe.nodes()) {
    save_io(payload, node.io);
    save_stage(payload, node.op);
    save_epilogue(payload, node.epilogue);  // v2
  }
  save_plan(payload, pipe.plan());  // v2
  const std::string bytes = payload.str();
  save_pod(os, kWamMagic);
  save_pod(os, kWamVersion);
  save_pod(os, static_cast<std::uint64_t>(bytes.size()));
  save_pod(os, fnv1a64(bytes.data(), bytes.size()));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("save_pipeline: stream write failed");
}

void save_pipeline(const std::string& path, const Int8Pipeline& pipe) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_pipeline: cannot open for write: " + path);
  save_pipeline(os, pipe);
}

Int8Pipeline load_pipeline(std::istream& is) {
  if (load_pod<std::uint32_t>(is) != kWamMagic) {
    throw std::runtime_error("load_pipeline: not a .wam artifact (bad magic)");
  }
  const auto version = load_pod<std::uint32_t>(is);
  if (version < 1 || version > kWamVersion) {
    throw std::runtime_error("load_pipeline: unsupported .wam version " +
                             std::to_string(version) + " (this reader handles 1.." +
                             std::to_string(kWamVersion) + ")");
  }
  const auto payload_bytes = load_pod<std::uint64_t>(is);
  if (payload_bytes > (std::uint64_t{1} << 40)) {
    throw std::runtime_error("load_pipeline: implausible payload size");
  }
  const auto checksum = load_pod<std::uint64_t>(is);
  std::string bytes(static_cast<std::size_t>(payload_bytes), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is) throw std::runtime_error("load_pipeline: truncated .wam payload");
  if (fnv1a64(bytes.data(), bytes.size()) != checksum) {
    throw std::runtime_error("load_pipeline: .wam checksum mismatch (corrupted artifact)");
  }

  std::istringstream payload(bytes, std::ios::binary);
  const auto count = load_pod<std::int64_t>(payload);
  if (count < 0 || count > 1'000'000) {
    throw std::runtime_error("load_pipeline: implausible stage count");
  }
  Int8Pipeline pipe;
  for (std::int64_t i = 0; i < count; ++i) {
    StageIO io = load_io(payload);
    // push() re-validates the graph wiring and — because every stage arrives
    // with its prepared caches — performs no weight transform or repack.
    Stage stage = load_stage(payload, version);
    std::vector<EpilogueOp> epilogue;
    if (version >= 2) epilogue = load_epilogue(payload);
    pipe.push(std::move(stage), std::move(io), std::move(epilogue));
  }
  if (version >= 2) load_plan(payload, pipe);
  if (payload.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("load_pipeline: trailing bytes after last stage");
  }
  return pipe;
}

Int8Pipeline load_pipeline(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_pipeline: cannot open for read: " + path);
  return load_pipeline(is);
}

}  // namespace wa::serve
