#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif
#ifdef __linux__
#include <unistd.h>
#endif

#include "serve/artifact.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wa::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Histogram buckets: sizes 1..kHistBuckets-1 tracked exactly, bucket 0
/// aggregates anything larger.
constexpr std::size_t kHistBuckets = 65;

/// Latency histogram edges: 5 us to ~1 s growing 1.25x per bucket — the one
/// bucket layout every model's wa_serve_latency_ms series shares, so stats()
/// quantiles carry at most one bucket width (~25% relative) of error.
std::vector<double> latency_bounds_ms() {
  return telemetry::exponential_bounds(0.005, 1.25, 56);
}

double to_ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Sample shape = request shape with the batch axis stripped; only requests
/// with identical sample shapes can share one pipeline forward.
bool same_sample_shape(const Tensor& a, const Tensor& b) {
  if (a.dim() != b.dim()) return false;
  for (std::int64_t d = 1; d < a.dim(); ++d) {
    if (a.size(d) != b.size(d)) return false;
  }
  return true;
}

std::size_t cls_idx(Priority p) {
  const auto i = static_cast<std::size_t>(p);
  return i < kPriorityClasses ? i : kPriorityClasses - 1;
}

/// One shard per NUMA node, read from sysfs. Hosts without the sysfs tree
/// (non-Linux, containers masking /sys) degrade to a single shard.
int detect_numa_nodes() {
#ifdef __linux__
  int n = 0;
  while (n < 64) {
    const std::string p = "/sys/devices/system/node/node" + std::to_string(n);
    if (::access(p.c_str(), F_OK) != 0) break;
    ++n;
  }
  return n > 0 ? n : 1;
#else
  return 1;
#endif
}

}  // namespace

const char* priority_name(Priority p) {
  switch (cls_idx(p)) {
    case 0: return "high";
    case 1: return "normal";
    default: return "low";
  }
}

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kQueueFull: return "queue_full";
    case Admission::kDeadlineInfeasible: return "deadline_infeasible";
    case Admission::kUnknownModel: return "unknown_model";
    case Admission::kShutdown: return "shutdown";
  }
  return "unknown";
}

struct InferenceServer::Impl {
  struct Request {
    Tensor input;
    std::int64_t samples = 0;
    std::promise<Tensor> promise;  ///< completes the future when no callback is set
    Completion completion;         ///< submit_async: invoked instead of the promise
    Priority cls = Priority::kNormal;
    Clock::time_point enqueued;
    Clock::time_point deadline{};  ///< meaningful iff has_deadline
    bool has_deadline = false;
    telemetry::TraceContext trace;  ///< sampled at submit; rides the request
  };

  static void complete_error(Request& r, std::exception_ptr e) {
    if (r.completion) {
      r.completion(std::move(e), Tensor());
    } else {
      r.promise.set_exception(std::move(e));
    }
  }
  static void complete_value(Request& r, Tensor t) {
    if (r.completion) {
      r.completion(nullptr, std::move(t));
    } else {
      r.promise.set_value(std::move(t));
    }
  }

  struct ModelState {
    /// Per-shard pipeline replicas. [0] is the registration copy; the other
    /// slots are materialized lazily by the first worker of that shard (the
    /// copy runs on the worker's own thread, so first-touch places the
    /// replica's weights on that worker's NUMA node). All replicas are
    /// identical frozen pipelines — logits are bit-identical across shards.
    std::vector<std::shared_ptr<const deploy::Int8Pipeline>> replicas;
    std::vector<bool> replica_building;

    /// Strict-priority class queues (index = Priority). Dispatch always
    /// drains the highest non-empty class first; FIFO within a class.
    std::array<std::deque<Request>, kPriorityClasses> queues;
    std::size_t queued = 0;  ///< total requests across classes
    /// Dispatches popped but not yet fully accounted (latency observed,
    /// futures completed). remove_model waits for this to hit zero so a
    /// re-registered name's stats baseline cannot race a straggler.
    int inflight = 0;
    /// Set (under mu) when the model is unregistered: waiting submitters
    /// wake and throw, new lookups no longer find the entry, and workers
    /// that still hold the state via shared_ptr finish their dispatch
    /// against an immutable pipeline.
    bool removed = false;

    std::uint64_t requests = 0, samples = 0, batches = 0, failed = 0, rejected = 0, expired = 0;
    std::array<std::uint64_t, kPriorityClasses> class_requests{};
    std::int64_t peak_bytes = 0;  ///< max RunStats.peak_activation_bytes over dispatches
    std::vector<std::uint64_t> hist = std::vector<std::uint64_t>(kHistBuckets, 0);
    Clock::time_point first_submit{};
    bool saw_submit = false;
    /// Smoothed dispatch (pipeline forward) time — the service-time estimate
    /// behind deadline admission and deadline-aware lingering.
    telemetry::EmaNs ema_dispatch;

    /// Telemetry handles into the global registry (created at add_model,
    /// labeled {model="name"}). The registry cells are process-lifetime —
    /// re-registering a name continues its exported series — so stats()
    /// windows the latency histogram against the baseline snapshot captured
    /// at registration. The windowed max cannot come from a histogram delta
    /// and is tracked directly (under mu).
    std::string name;
    telemetry::Counter c_requests, c_samples, c_batches, c_failed, c_rejected;
    telemetry::Gauge g_depth;
    telemetry::Histogram h_latency;
    telemetry::HistogramSnapshot lat_base;
    double lat_max_ms = 0.0;
    /// Per-class series: completed requests, deadline misses, latency.
    std::array<telemetry::Counter, kPriorityClasses> c_class_requests, c_class_expired;
    std::array<telemetry::Histogram, kPriorityClasses> h_class_latency;
  };

  explicit Impl(ServerOptions o) : opts(o) {
    opts.workers = std::max(1, opts.workers);
    opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
    opts.batch.max_batch = std::max<std::int64_t>(1, opts.batch.max_batch);
    opts.batch.max_delay_us = std::max<std::int64_t>(0, opts.batch.max_delay_us);
    nshards = opts.shards == 0 ? detect_numa_nodes() : std::max(1, opts.shards);
    nshards = std::min(nshards, opts.workers);
    workers.reserve(static_cast<std::size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i) {
      workers.emplace_back([this, shard = i % nshards] { worker_loop(shard); });
    }
  }

  ServerOptions opts;
  int nshards = 1;
  mutable std::mutex mu;
  std::condition_variable work_cv;   // workers: new requests or stop
  std::condition_variable space_cv;  // submitters: queue space freed
  std::condition_variable drain_cv;  // remove_model: in-flight dispatches accounted
  bool stop = false;
  bool joined = false;
  // Models are held by shared_ptr: remove_model() can erase the registry
  // entry while a worker still runs a dispatch against the state — the
  // worker's reference keeps it alive until the futures are completed.
  std::map<std::string, std::shared_ptr<ModelState>> models;
  std::vector<std::thread> workers;

  // ---- scheduling (all under mu) -------------------------------------------

  /// Round-robin over the registry so a saturated model cannot starve the
  /// others: each pick starts one past the previously dispatched model.
  std::shared_ptr<ModelState> pick_locked() {
    if (models.empty()) return nullptr;
    const std::size_t n = models.size();
    auto it = models.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rr_cursor % n));
    for (std::size_t i = 0; i < n; ++i) {
      if (it->second->queued != 0) {
        rr_cursor = (rr_cursor % n) + i + 1;
        return it->second;
      }
      if (++it == models.end()) it = models.begin();
    }
    return nullptr;
  }
  std::size_t rr_cursor = 0;

  /// Highest non-empty priority class, kPriorityClasses when all are empty.
  static std::size_t top_class_locked(const ModelState& m) {
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
      if (!m.queues[c].empty()) return c;
    }
    return kPriorityClasses;
  }

  /// Samples in the coalescable prefix of the scheduled (= highest
  /// non-empty) class: consecutive requests (FIFO — never reordered past a
  /// shape mismatch) whose sample shapes match the front, capped at
  /// max_batch.
  std::int64_t eligible_samples_locked(const ModelState& m) const {
    const std::size_t c = top_class_locked(m);
    if (c == kPriorityClasses) return 0;
    const std::deque<Request>& q = m.queues[c];
    std::int64_t total = 0;
    for (const Request& r : q) {
      if (!same_sample_shape(r.input, q.front().input)) break;
      total += r.samples;
      if (total >= opts.batch.max_batch) break;
    }
    return total;
  }

  /// How long the linger may run: the oldest scheduled request's delay
  /// budget, pulled in so that no queued deadline in the coalescable prefix
  /// expires mid-wait (the smoothed dispatch time is reserved for the
  /// forward itself).
  Clock::time_point linger_deadline_locked(const ModelState& m) const {
    const std::size_t c = top_class_locked(m);
    if (c == kPriorityClasses) return Clock::now();
    const std::deque<Request>& q = m.queues[c];
    Clock::time_point dl = q.front().enqueued + std::chrono::microseconds(opts.batch.max_delay_us);
    const auto est =
        std::chrono::nanoseconds(static_cast<std::int64_t>(m.ema_dispatch.value_ns()));
    std::int64_t total = 0;
    for (const Request& r : q) {
      if (!same_sample_shape(r.input, q.front().input)) break;
      if (r.has_deadline) dl = std::min(dl, r.deadline - est);
      total += r.samples;
      if (total >= opts.batch.max_batch) break;
    }
    return dl;
  }

  /// Pop the next dispatch group from the highest non-empty class, shedding
  /// expired requests (deadline already passed) as they surface — a dead
  /// request never occupies a batch slot. Returns {group, expired}; the
  /// caller completes the expired ones outside the lock.
  std::pair<std::vector<Request>, std::vector<Request>> pop_group_locked(ModelState& m) {
    std::vector<Request> group, dead;
    const auto now = Clock::now();
    for (std::size_t c = 0; c < kPriorityClasses && group.empty(); ++c) {
      std::deque<Request>& q = m.queues[c];
      std::int64_t total = 0;
      while (!q.empty()) {
        Request& r = q.front();
        if (r.has_deadline && r.deadline < now) {
          dead.push_back(std::move(r));
          q.pop_front();
          --m.queued;
          ++m.expired;
          continue;
        }
        if (!group.empty() && (!same_sample_shape(r.input, group.front().input) ||
                               total + r.samples > opts.batch.max_batch)) {
          break;
        }
        total += r.samples;
        group.push_back(std::move(r));
        q.pop_front();
        --m.queued;
        if (total >= opts.batch.max_batch) break;
      }
    }
    if (!group.empty()) ++m.inflight;
    m.g_depth.set(static_cast<double>(m.queued));
    return {std::move(group), std::move(dead)};
  }

  /// The shard's pipeline replica, materialized on first use by this shard's
  /// worker thread (first-touch NUMA placement). Racing builders fall back
  /// to the registration replica for the current dispatch.
  std::shared_ptr<const deploy::Int8Pipeline> replica_for(ModelState& m, std::size_t shard) {
    std::unique_lock<std::mutex> lk(mu);
    if (shard >= m.replicas.size()) return m.replicas.front();
    if (m.replicas[shard] != nullptr) return m.replicas[shard];
    if (m.replica_building[shard]) return m.replicas.front();
    m.replica_building[shard] = true;
    const std::shared_ptr<const deploy::Int8Pipeline> src = m.replicas.front();
    lk.unlock();
    auto copy = std::make_shared<deploy::Int8Pipeline>(*src);  // deep copy on THIS thread
    lk.lock();
    m.replicas[shard] = std::move(copy);
    m.replica_building[shard] = false;
    return m.replicas[shard];
  }

  // ---- worker --------------------------------------------------------------

  void worker_loop(int shard) {
#ifdef _OPENMP
    if (opts.omp_threads_per_worker > 0) omp_set_num_threads(opts.omp_threads_per_worker);
#endif
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      std::shared_ptr<ModelState> m = pick_locked();
      if (m == nullptr) {
        if (stop) return;  // drained: every queue is empty
        work_cv.wait(lk);
        continue;
      }
      // Linger for more work to coalesce — but never past the oldest
      // scheduled request's delay budget or a queued deadline, and not at
      // all once shutdown began. Re-evaluated per wake: a higher class
      // arriving mid-linger changes what will be dispatched.
      const auto picked = Clock::now();  // traced queue_wait ends here
      while (!stop && m->queued != 0 &&
             eligible_samples_locked(*m) < opts.batch.max_batch) {
        const auto deadline = linger_deadline_locked(*m);
        if (Clock::now() >= deadline) break;
        work_cv.wait_until(lk, deadline);
      }
      if (m->queued == 0) continue;  // another worker dispatched it
      auto [group, dead] = pop_group_locked(*m);
      lk.unlock();
      space_cv.notify_all();
      for (Request& r : dead) {
        m->c_class_expired[cls_idx(r.cls)].inc();
        complete_error(r, std::make_exception_ptr(std::runtime_error(
                              "InferenceServer: deadline expired before dispatch")));
      }
      if (!group.empty()) run_group(*m, group, picked, static_cast<std::size_t>(shard));
      lk.lock();
    }
  }

  void run_group(ModelState& m, std::vector<Request>& group, Clock::time_point picked,
                 std::size_t shard) {
    std::int64_t total = 0;
    for (const Request& r : group) total += r.samples;
    // The pipeline emits its per-stage spans under ONE trace id; the first
    // traced request in the group carries the whole forward (the others'
    // serve-level spans still show their dispatch interval).
    telemetry::TraceContext ctx;
    for (const Request& r : group) {
      if (r.trace.valid()) {
        ctx = r.trace;
        break;
      }
    }

    const std::shared_ptr<const deploy::Int8Pipeline> pipe = replica_for(m, shard);
    const auto t_dispatch = Clock::now();
    Tensor out;
    deploy::RunStats rstats;
    std::exception_ptr err;
    try {
      if (group.size() == 1) {
        out = pipe->run(group.front().input, nullptr, &rstats, ctx);
      } else {
        std::vector<Tensor> parts;
        parts.reserve(group.size());
        for (Request& r : group) parts.push_back(std::move(r.input));
        out = pipe->run(Tensor::concat(parts, 0), nullptr, &rstats, ctx);
      }
    } catch (...) {
      err = std::current_exception();
    }

    // Account the dispatch BEFORE completing the futures: a caller whose
    // future just resolved must already see itself in stats().
    const auto done = Clock::now();
    m.ema_dispatch.observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(done - t_dispatch).count());
    {
      std::lock_guard<std::mutex> lk(mu);
      m.batches += 1;
      m.requests += group.size();
      m.peak_bytes = std::max(m.peak_bytes, rstats.peak_activation_bytes);
      m.samples += static_cast<std::uint64_t>(total);
      if (err) m.failed += group.size();
      const std::size_t bucket =
          static_cast<std::size_t>(total) < kHistBuckets ? static_cast<std::size_t>(total) : 0;
      m.hist[bucket] += 1;
      for (const Request& r : group) {
        m.class_requests[cls_idx(r.cls)] += 1;
        m.lat_max_ms = std::max(m.lat_max_ms, to_ms(done - r.enqueued));
      }
    }
    // Registry updates take no lock at all (striped relaxed atomics).
    m.c_batches.inc();
    m.c_requests.inc(group.size());
    m.c_samples.inc(static_cast<std::uint64_t>(total));
    if (err) m.c_failed.inc(group.size());
    for (const Request& r : group) {
      const double ms = to_ms(done - r.enqueued);
      m.h_latency.observe(ms);
      m.c_class_requests[cls_idx(r.cls)].inc();
      m.h_class_latency[cls_idx(r.cls)].observe(ms);
    }

    // Serve-level spans per traced request: request ⊃ queue_wait → coalesce
    // → dispatch. A request that arrived during the linger has
    // enqueued > picked — its queue_wait collapses to zero and coalesce
    // covers the remainder of the wait.
    if (telemetry::Tracer::instance().enabled()) {
      auto& tracer = telemetry::Tracer::instance();
      for (const Request& r : group) {
        if (!r.trace.valid()) continue;
        const std::int64_t t_enq = tracer.to_ns(r.enqueued);
        const std::int64_t t_pick = std::max(t_enq, tracer.to_ns(picked));
        const std::int64_t t_disp = std::max(t_pick, tracer.to_ns(t_dispatch));
        const std::int64_t t_done = tracer.to_ns(done);
        tracer.emit({"request", "serve", r.trace.id, t_enq, t_done - t_enq,
                     "\"model\":\"" + m.name + "\",\"batch\":" + std::to_string(group.size()) +
                         ",\"samples\":" + std::to_string(total)});
        tracer.emit({"queue_wait", "serve", r.trace.id, t_enq, t_pick - t_enq, {}});
        tracer.emit({"coalesce", "serve", r.trace.id, t_pick, t_disp - t_pick, {}});
        tracer.emit({"dispatch", "serve", r.trace.id, t_disp, t_done - t_disp, {}});
      }
    }

    std::int64_t off = 0;
    for (Request& r : group) {
      if (err) {
        complete_error(r, err);
      } else if (group.size() == 1) {
        complete_value(r, std::move(out));
      } else {
        complete_value(r, out.slice0(off, off + r.samples));
      }
      off += r.samples;
    }

    // The dispatch is fully accounted (histograms observed, callers
    // completed): release the in-flight hold so remove_model can finish.
    {
      std::lock_guard<std::mutex> lk(mu);
      --m.inflight;
      if (m.inflight == 0) drain_cv.notify_all();
    }
  }

  // ---- submission ----------------------------------------------------------

  /// The one admission path behind submit/try_submit/submit_async. `sync`
  /// throws the documented exceptions for unknown/removed/shutdown instead
  /// of returning a verdict (the future-based API contract); async callers
  /// get the verdict and own the error reply.
  Admission enqueue(const std::string& model, Tensor& input, SubmitOptions sopts, bool blocking,
                    bool sync, Completion done, std::future<Tensor>* out_fut) {
    if (input.dim() < 1 || input.size(0) < 1) {
      throw std::invalid_argument("InferenceServer::submit: input needs a batch axis [N, ...]");
    }
    const std::size_t cls = cls_idx(sopts.priority);
    std::unique_lock<std::mutex> lk(mu);
    auto it = models.find(model);
    if (it == models.end()) {
      if (sync) throw std::invalid_argument("InferenceServer: unknown model '" + model + "'");
      return Admission::kUnknownModel;
    }
    // Hold the state directly: a concurrent remove_model() may erase the map
    // entry (and even re-register the name) while we wait for queue space.
    std::shared_ptr<ModelState> state = it->second;
    ModelState& m = *state;
    while (!stop && !m.removed && m.queued >= opts.queue_capacity) {
      if (!blocking) {
        ++m.rejected;
        m.c_rejected.inc();
        return Admission::kQueueFull;
      }
      space_cv.wait(lk);
    }
    if (stop) {
      if (sync) throw std::runtime_error("InferenceServer: shutting down");
      return Admission::kShutdown;
    }
    if (m.removed) {
      if (sync) {
        throw std::invalid_argument("InferenceServer: model '" + model + "' was removed");
      }
      return Admission::kUnknownModel;
    }
    // Deadline admission: once the dispatch-time EMA is warm, a budget the
    // forward alone would blow is refused up front — the answer could never
    // arrive in time, so the request must not displace feasible work.
    if (sopts.deadline_us > 0 && m.ema_dispatch.count() >= telemetry::EmaNs::kWarmup &&
        m.ema_dispatch.value_ns() > static_cast<double>(sopts.deadline_us) * 1e3) {
      ++m.expired;
      m.c_class_expired[cls].inc();
      return Admission::kDeadlineInfeasible;
    }

    Request r;
    r.samples = input.size(0);
    r.input = std::move(input);
    r.cls = sopts.priority;
    r.completion = std::move(done);
    r.enqueued = Clock::now();
    if (sopts.deadline_us > 0) {
      r.has_deadline = true;
      r.deadline = r.enqueued + std::chrono::microseconds(sopts.deadline_us);
    }
    r.trace = telemetry::Tracer::instance().sample();
    if (!m.saw_submit) {
      m.saw_submit = true;
      m.first_submit = r.enqueued;
    }
    if (out_fut != nullptr) *out_fut = r.promise.get_future();
    m.queues[cls].push_back(std::move(r));
    ++m.queued;
    m.g_depth.set(static_cast<double>(m.queued));
    work_cv.notify_all();
    return Admission::kAccepted;
  }

  void shutdown() {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (joined) return;
      stop = true;
      to_join.swap(workers);  // claim the threads so a racing shutdown joins nothing
    }
    work_cv.notify_all();
    space_cv.notify_all();
    for (std::thread& t : to_join) t.join();
    std::lock_guard<std::mutex> lk(mu);
    joined = true;
    // Workers drain before exiting, so queues are normally empty here; this
    // guards the pathological path (a worker that died on a non-exception).
    // The depth gauge is zeroed either way — an exported series must not
    // keep reporting phantom queued work after the drain.
    for (auto& [name, m] : models) {
      for (auto& q : m->queues) {
        for (Request& r : q) {
          complete_error(r, std::make_exception_ptr(
                                std::runtime_error("InferenceServer: shut down before request ran")));
        }
        q.clear();
      }
      m->queued = 0;
      m->g_depth.set(0.0);
    }
  }
};

InferenceServer::InferenceServer(ServerOptions opts) : impl_(std::make_unique<Impl>(opts)) {}

InferenceServer::~InferenceServer() { impl_->shutdown(); }

void InferenceServer::add_model(const std::string& name, deploy::Int8Pipeline pipe) {
  if (pipe.size() == 0) {
    throw std::invalid_argument("InferenceServer::add_model: empty pipeline");
  }
  if (const auto dynamic = pipe.dynamic_scale_labels(); !dynamic.empty()) {
    throw std::invalid_argument(
        "InferenceServer::add_model('" + name + "'): pipeline has dynamic scales (" +
        deploy::Int8Pipeline::join_labels(dynamic) +
        ") — coalesced batches would perturb each other's logits; call "
        "freeze_scales() on a calibration batch before serving");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->stop) throw std::runtime_error("InferenceServer: shutting down");
  auto [it, inserted] = impl_->models.try_emplace(name, std::make_shared<Impl::ModelState>());
  if (!inserted) {
    throw std::invalid_argument("InferenceServer::add_model: model '" + name +
                                "' is already registered");
  }
  Impl::ModelState& m = *it->second;
  m.replicas.assign(static_cast<std::size_t>(impl_->nshards), nullptr);
  m.replica_building.assign(static_cast<std::size_t>(impl_->nshards), false);
  m.replicas.front() = std::make_shared<const deploy::Int8Pipeline>(std::move(pipe));
  // Wire the model's telemetry: get-or-create is idempotent, so a
  // re-registered name continues the exported series; the latency baseline
  // snapshot carves this registration's stats() window out of it (safe
  // because remove_model waits for the prior incarnation's in-flight
  // dispatches before returning).
  m.name = name;
  auto& reg = telemetry::Registry::global();
  const std::string label = "{model=\"" + name + "\"}";
  m.c_requests = reg.counter("wa_serve_requests_total" + label);
  m.c_samples = reg.counter("wa_serve_samples_total" + label);
  m.c_batches = reg.counter("wa_serve_batches_total" + label);
  m.c_failed = reg.counter("wa_serve_failed_total" + label);
  m.c_rejected = reg.counter("wa_serve_rejected_total" + label);
  m.g_depth = reg.gauge("wa_serve_queue_depth" + label);
  m.h_latency = reg.histogram("wa_serve_latency_ms" + label, latency_bounds_ms());
  m.lat_base = m.h_latency.snapshot();
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const std::string cl = "{model=\"" + name + "\",class=\"" +
                           priority_name(static_cast<Priority>(c)) + "\"}";
    m.c_class_requests[c] = reg.counter("wa_serve_class_requests_total" + cl);
    m.c_class_expired[c] = reg.counter("wa_serve_class_expired_total" + cl);
    m.h_class_latency[c] = reg.histogram("wa_serve_class_latency_ms" + cl, latency_bounds_ms());
  }
}

void InferenceServer::remove_model(const std::string& name) {
  std::shared_ptr<Impl::ModelState> state;
  std::array<std::deque<Impl::Request>, kPriorityClasses> orphans;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto it = impl_->models.find(name);
    if (it == impl_->models.end()) {
      throw std::invalid_argument("InferenceServer: unknown model '" + name + "'");
    }
    state = it->second;
    state->removed = true;
    for (std::size_t c = 0; c < kPriorityClasses; ++c) orphans[c].swap(state->queues[c]);
    state->queued = 0;
    // The exported depth gauge must return to zero with the queue: the
    // series outlives the registration and would otherwise report the
    // removed incarnation's last depth forever.
    state->g_depth.set(0.0);
    impl_->models.erase(it);
  }
  // Wake submitters blocked on the removed model's full queue (they observe
  // `removed` and throw) and workers whose pick may have raced the erase.
  impl_->space_cv.notify_all();
  impl_->work_cv.notify_all();
  // Complete the undispatched futures outside the lock: every accepted
  // request resolves, value or exception — never silently dropped.
  for (auto& q : orphans) {
    for (Impl::Request& r : q) {
      Impl::complete_error(r, std::make_exception_ptr(std::runtime_error(
                                  "InferenceServer: model '" + name +
                                  "' was removed before the request ran")));
    }
  }
  // Wait out the in-flight dispatches: when remove_model returns, every one
  // of this incarnation's samples is in the exported series, so the next
  // add_model under this name captures a clean stats baseline.
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->drain_cv.wait(lk, [&] { return state->inflight == 0; });
}

void InferenceServer::load_model(const std::string& name, const std::string& wam_path) {
  add_model(name, load_pipeline(wam_path));
}

std::vector<std::string> InferenceServer::model_names() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->models.size());
  for (const auto& [name, m] : impl_->models) names.push_back(name);
  return names;
}

std::future<Tensor> InferenceServer::submit(const std::string& model, Tensor input) {
  return submit(model, std::move(input), SubmitOptions{});
}

std::future<Tensor> InferenceServer::submit(const std::string& model, Tensor input,
                                            SubmitOptions opts) {
  std::future<Tensor> fut;
  const Admission a = impl_->enqueue(model, input, opts, /*blocking=*/true,
                                     /*sync=*/true, nullptr, &fut);
  if (a == Admission::kDeadlineInfeasible) {
    std::promise<Tensor> p;
    p.set_exception(std::make_exception_ptr(std::runtime_error(
        "InferenceServer: deadline of " + std::to_string(opts.deadline_us) +
        "us is below the model's smoothed dispatch time — request refused at admission")));
    return p.get_future();
  }
  return fut;
}

std::optional<std::future<Tensor>> InferenceServer::try_submit(const std::string& model,
                                                               Tensor input, SubmitOptions opts) {
  std::future<Tensor> fut;
  const Admission a = impl_->enqueue(model, input, opts, /*blocking=*/false,
                                     /*sync=*/true, nullptr, &fut);
  if (a != Admission::kAccepted) return std::nullopt;
  return fut;
}

Admission InferenceServer::submit_async(const std::string& model, Tensor&& input,
                                        SubmitOptions opts, Completion done) {
  return impl_->enqueue(model, input, opts, /*blocking=*/false, /*sync=*/false,
                        std::move(done), nullptr);
}

ModelStats InferenceServer::stats(const std::string& model) const {
  ModelStats s;
  telemetry::Histogram h_latency;
  telemetry::HistogramSnapshot lat_base;
  double lat_max_ms = 0.0;
  Clock::time_point first_submit{};
  bool saw_submit = false;
  {
    // Copy under the scheduler lock, merge the histogram stripes after
    // releasing it: a monitoring poll must not stall submitters and workers.
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto it = impl_->models.find(model);
    if (it == impl_->models.end()) {
      throw std::invalid_argument("InferenceServer: unknown model '" + model + "'");
    }
    const Impl::ModelState& m = *it->second;
    s.requests = m.requests;
    s.samples = m.samples;
    s.batches = m.batches;
    s.failed = m.failed;
    s.rejected = m.rejected;
    s.expired = m.expired;
    s.queue_depth = m.queued;
    s.class_requests = m.class_requests;
    s.batch_size_hist = m.hist;
    s.peak_activation_bytes = m.peak_bytes;
    h_latency = m.h_latency;
    lat_base = m.lat_base;
    lat_max_ms = m.lat_max_ms;
    first_submit = m.first_submit;
    saw_submit = m.saw_submit;
  }
  // Quantiles from the registry histogram, windowed to this registration.
  // Monotone in q by construction, so p99 >= p95 >= p50 always holds.
  const telemetry::HistogramSnapshot lat = h_latency.snapshot().minus(lat_base);
  s.latency.p50_ms = lat.quantile(0.50);
  s.latency.p95_ms = lat.quantile(0.95);
  s.latency.p99_ms = lat.quantile(0.99);
  s.latency.mean_ms = lat.mean();
  s.latency.max_ms = lat_max_ms;
  if (saw_submit && s.samples > 0) {
    const double secs = std::chrono::duration<double>(Clock::now() - first_submit).count();
    if (secs > 0.0) s.samples_per_sec = static_cast<double>(s.samples) / secs;
  }
  return s;
}

int InferenceServer::shards() const { return impl_->nshards; }

void InferenceServer::shutdown() { impl_->shutdown(); }

void dump_metrics(std::ostream& os) {
  telemetry::write_prometheus(os, telemetry::Registry::global().snapshot());
}

}  // namespace wa::serve
