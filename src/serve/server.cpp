#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "serve/artifact.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wa::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Histogram buckets: sizes 1..kHistBuckets-1 tracked exactly, bucket 0
/// aggregates anything larger.
constexpr std::size_t kHistBuckets = 65;

/// Latency histogram edges: 5 us to ~1 s growing 1.25x per bucket — the one
/// bucket layout every model's wa_serve_latency_ms series shares, so stats()
/// quantiles carry at most one bucket width (~25% relative) of error.
std::vector<double> latency_bounds_ms() {
  return telemetry::exponential_bounds(0.005, 1.25, 56);
}

double to_ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Sample shape = request shape with the batch axis stripped; only requests
/// with identical sample shapes can share one pipeline forward.
bool same_sample_shape(const Tensor& a, const Tensor& b) {
  if (a.dim() != b.dim()) return false;
  for (std::int64_t d = 1; d < a.dim(); ++d) {
    if (a.size(d) != b.size(d)) return false;
  }
  return true;
}

}  // namespace

struct InferenceServer::Impl {
  struct Request {
    Tensor input;
    std::int64_t samples = 0;
    std::promise<Tensor> promise;
    Clock::time_point enqueued;
    telemetry::TraceContext trace;  ///< sampled at submit; rides the request
  };

  struct ModelState {
    deploy::Int8Pipeline pipe;
    std::deque<Request> queue;
    /// Set (under mu) when the model is unregistered: waiting submitters
    /// wake and throw, new lookups no longer find the entry, and workers
    /// that still hold the state via shared_ptr finish their dispatch
    /// against an immutable pipeline.
    bool removed = false;

    std::uint64_t requests = 0, samples = 0, batches = 0, failed = 0, rejected = 0;
    std::int64_t peak_bytes = 0;  ///< max RunStats.peak_activation_bytes over dispatches
    std::vector<std::uint64_t> hist = std::vector<std::uint64_t>(kHistBuckets, 0);
    Clock::time_point first_submit{};
    bool saw_submit = false;

    /// Telemetry handles into the global registry (created at add_model,
    /// labeled {model="name"}). The registry cells are process-lifetime —
    /// re-registering a name continues its exported series — so stats()
    /// windows the latency histogram against the baseline snapshot captured
    /// at registration. The windowed max cannot come from a histogram delta
    /// and is tracked directly (under mu).
    std::string name;
    telemetry::Counter c_requests, c_samples, c_batches, c_failed, c_rejected;
    telemetry::Gauge g_depth;
    telemetry::Histogram h_latency;
    telemetry::HistogramSnapshot lat_base;
    double lat_max_ms = 0.0;
  };

  explicit Impl(ServerOptions o) : opts(o) {
    opts.workers = std::max(1, opts.workers);
    opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
    opts.batch.max_batch = std::max<std::int64_t>(1, opts.batch.max_batch);
    opts.batch.max_delay_us = std::max<std::int64_t>(0, opts.batch.max_delay_us);
    workers.reserve(static_cast<std::size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ServerOptions opts;
  mutable std::mutex mu;
  std::condition_variable work_cv;   // workers: new requests or stop
  std::condition_variable space_cv;  // submitters: queue space freed
  bool stop = false;
  bool joined = false;
  // Models are held by shared_ptr: remove_model() can erase the registry
  // entry while a worker still runs a dispatch against the state — the
  // worker's reference keeps it alive until the futures are completed.
  std::map<std::string, std::shared_ptr<ModelState>> models;
  std::vector<std::thread> workers;

  // ---- scheduling (all under mu) -------------------------------------------

  /// Round-robin over the registry so a saturated model cannot starve the
  /// others: each pick starts one past the previously dispatched model.
  std::shared_ptr<ModelState> pick_locked() {
    if (models.empty()) return nullptr;
    const std::size_t n = models.size();
    auto it = models.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rr_cursor % n));
    for (std::size_t i = 0; i < n; ++i) {
      if (!it->second->queue.empty()) {
        rr_cursor = (rr_cursor % n) + i + 1;
        return it->second;
      }
      if (++it == models.end()) it = models.begin();
    }
    return nullptr;
  }
  std::size_t rr_cursor = 0;

  /// Samples in the coalescable prefix of the queue: consecutive requests
  /// (FIFO — never reordered past a shape mismatch) whose sample shapes
  /// match the front request, capped at max_batch.
  std::int64_t eligible_samples_locked(const ModelState& m) const {
    std::int64_t total = 0;
    for (const Request& r : m.queue) {
      if (!same_sample_shape(r.input, m.queue.front().input)) break;
      total += r.samples;
      if (total >= opts.batch.max_batch) break;
    }
    return total;
  }

  std::vector<Request> pop_group_locked(ModelState& m) {
    std::vector<Request> group;
    std::int64_t total = 0;
    while (!m.queue.empty()) {
      Request& r = m.queue.front();
      if (!group.empty() && (!same_sample_shape(r.input, group.front().input) ||
                             total + r.samples > opts.batch.max_batch)) {
        break;
      }
      total += r.samples;
      group.push_back(std::move(r));
      m.queue.pop_front();
      if (total >= opts.batch.max_batch) break;
    }
    m.g_depth.set(static_cast<double>(m.queue.size()));
    return group;
  }

  // ---- worker --------------------------------------------------------------

  void worker_loop() {
#ifdef _OPENMP
    if (opts.omp_threads_per_worker > 0) omp_set_num_threads(opts.omp_threads_per_worker);
#endif
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      std::shared_ptr<ModelState> m = pick_locked();
      if (m == nullptr) {
        if (stop) return;  // drained: every queue is empty
        work_cv.wait(lk);
        continue;
      }
      // Linger for more work to coalesce — but never past the oldest
      // request's delay budget, and not at all once shutdown began.
      const auto picked = Clock::now();  // traced queue_wait ends here
      const auto deadline =
          m->queue.front().enqueued + std::chrono::microseconds(opts.batch.max_delay_us);
      while (!stop && !m->queue.empty() &&
             eligible_samples_locked(*m) < opts.batch.max_batch && Clock::now() < deadline) {
        work_cv.wait_until(lk, deadline);
      }
      if (m->queue.empty()) continue;  // another worker dispatched it
      std::vector<Request> group = pop_group_locked(*m);
      lk.unlock();
      space_cv.notify_all();
      run_group(*m, group, picked);
      lk.lock();
    }
  }

  void run_group(ModelState& m, std::vector<Request>& group, Clock::time_point picked) {
    std::int64_t total = 0;
    for (const Request& r : group) total += r.samples;
    // The pipeline emits its per-stage spans under ONE trace id; the first
    // traced request in the group carries the whole forward (the others'
    // serve-level spans still show their dispatch interval).
    telemetry::TraceContext ctx;
    for (const Request& r : group) {
      if (r.trace.valid()) {
        ctx = r.trace;
        break;
      }
    }

    const auto t_dispatch = Clock::now();
    Tensor out;
    deploy::RunStats rstats;
    std::exception_ptr err;
    try {
      if (group.size() == 1) {
        out = m.pipe.run(group.front().input, nullptr, &rstats, ctx);
      } else {
        std::vector<Tensor> parts;
        parts.reserve(group.size());
        for (Request& r : group) parts.push_back(std::move(r.input));
        out = m.pipe.run(Tensor::concat(parts, 0), nullptr, &rstats, ctx);
      }
    } catch (...) {
      err = std::current_exception();
    }

    // Account the dispatch BEFORE completing the futures: a caller whose
    // future just resolved must already see itself in stats().
    const auto done = Clock::now();
    {
      std::lock_guard<std::mutex> lk(mu);
      m.batches += 1;
      m.requests += group.size();
      m.peak_bytes = std::max(m.peak_bytes, rstats.peak_activation_bytes);
      m.samples += static_cast<std::uint64_t>(total);
      if (err) m.failed += group.size();
      const std::size_t bucket =
          static_cast<std::size_t>(total) < kHistBuckets ? static_cast<std::size_t>(total) : 0;
      m.hist[bucket] += 1;
      for (const Request& r : group) {
        m.lat_max_ms = std::max(m.lat_max_ms, to_ms(done - r.enqueued));
      }
    }
    // Registry updates take no lock at all (striped relaxed atomics).
    m.c_batches.inc();
    m.c_requests.inc(group.size());
    m.c_samples.inc(static_cast<std::uint64_t>(total));
    if (err) m.c_failed.inc(group.size());
    for (const Request& r : group) m.h_latency.observe(to_ms(done - r.enqueued));

    // Serve-level spans per traced request: request ⊃ queue_wait → coalesce
    // → dispatch. A request that arrived during the linger has
    // enqueued > picked — its queue_wait collapses to zero and coalesce
    // covers the remainder of the wait.
    if (telemetry::Tracer::instance().enabled()) {
      auto& tracer = telemetry::Tracer::instance();
      for (const Request& r : group) {
        if (!r.trace.valid()) continue;
        const std::int64_t t_enq = tracer.to_ns(r.enqueued);
        const std::int64_t t_pick = std::max(t_enq, tracer.to_ns(picked));
        const std::int64_t t_disp = std::max(t_pick, tracer.to_ns(t_dispatch));
        const std::int64_t t_done = tracer.to_ns(done);
        tracer.emit({"request", "serve", r.trace.id, t_enq, t_done - t_enq,
                     "\"model\":\"" + m.name + "\",\"batch\":" + std::to_string(group.size()) +
                         ",\"samples\":" + std::to_string(total)});
        tracer.emit({"queue_wait", "serve", r.trace.id, t_enq, t_pick - t_enq, {}});
        tracer.emit({"coalesce", "serve", r.trace.id, t_pick, t_disp - t_pick, {}});
        tracer.emit({"dispatch", "serve", r.trace.id, t_disp, t_done - t_disp, {}});
      }
    }

    std::int64_t off = 0;
    for (Request& r : group) {
      if (err) {
        r.promise.set_exception(err);
      } else if (group.size() == 1) {
        r.promise.set_value(std::move(out));
      } else {
        r.promise.set_value(out.slice0(off, off + r.samples));
      }
      off += r.samples;
    }
  }

  // ---- submission ----------------------------------------------------------

  std::optional<std::future<Tensor>> enqueue(const std::string& model, Tensor input,
                                             bool blocking) {
    if (input.dim() < 1 || input.size(0) < 1) {
      throw std::invalid_argument("InferenceServer::submit: input needs a batch axis [N, ...]");
    }
    std::unique_lock<std::mutex> lk(mu);
    auto it = models.find(model);
    if (it == models.end()) {
      throw std::invalid_argument("InferenceServer: unknown model '" + model + "'");
    }
    // Hold the state directly: a concurrent remove_model() may erase the map
    // entry (and even re-register the name) while we wait for queue space.
    std::shared_ptr<ModelState> state = it->second;
    ModelState& m = *state;
    while (!stop && !m.removed && m.queue.size() >= opts.queue_capacity) {
      if (!blocking) {
        ++m.rejected;
        m.c_rejected.inc();
        return std::nullopt;
      }
      space_cv.wait(lk);
    }
    if (stop) throw std::runtime_error("InferenceServer: shutting down");
    if (m.removed) {
      throw std::invalid_argument("InferenceServer: model '" + model + "' was removed");
    }

    Request r;
    r.samples = input.size(0);
    r.input = std::move(input);
    r.enqueued = Clock::now();
    r.trace = telemetry::Tracer::instance().sample();
    if (!m.saw_submit) {
      m.saw_submit = true;
      m.first_submit = r.enqueued;
    }
    std::future<Tensor> fut = r.promise.get_future();
    m.queue.push_back(std::move(r));
    m.g_depth.set(static_cast<double>(m.queue.size()));
    work_cv.notify_all();
    return fut;
  }

  void shutdown() {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (joined) return;
      stop = true;
      to_join.swap(workers);  // claim the threads so a racing shutdown joins nothing
    }
    work_cv.notify_all();
    space_cv.notify_all();
    for (std::thread& t : to_join) t.join();
    std::lock_guard<std::mutex> lk(mu);
    joined = true;
    // Workers drain before exiting, so queues are normally empty here; this
    // guards the pathological path (a worker that died on a non-exception).
    for (auto& [name, m] : models) {
      for (Request& r : m->queue) {
        r.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("InferenceServer: shut down before request ran")));
      }
      m->queue.clear();
    }
  }
};

InferenceServer::InferenceServer(ServerOptions opts) : impl_(std::make_unique<Impl>(opts)) {}

InferenceServer::~InferenceServer() { impl_->shutdown(); }

void InferenceServer::add_model(const std::string& name, deploy::Int8Pipeline pipe) {
  if (pipe.size() == 0) {
    throw std::invalid_argument("InferenceServer::add_model: empty pipeline");
  }
  if (const auto dynamic = pipe.dynamic_scale_labels(); !dynamic.empty()) {
    throw std::invalid_argument(
        "InferenceServer::add_model('" + name + "'): pipeline has dynamic scales (" +
        deploy::Int8Pipeline::join_labels(dynamic) +
        ") — coalesced batches would perturb each other's logits; call "
        "freeze_scales() on a calibration batch before serving");
  }
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (impl_->stop) throw std::runtime_error("InferenceServer: shutting down");
  auto [it, inserted] = impl_->models.try_emplace(name, std::make_shared<Impl::ModelState>());
  if (!inserted) {
    throw std::invalid_argument("InferenceServer::add_model: model '" + name +
                                "' is already registered");
  }
  it->second->pipe = std::move(pipe);
  // Wire the model's telemetry: get-or-create is idempotent, so a
  // re-registered name continues the exported series; the latency baseline
  // snapshot carves this registration's stats() window out of it.
  Impl::ModelState& m = *it->second;
  m.name = name;
  auto& reg = telemetry::Registry::global();
  const std::string label = "{model=\"" + name + "\"}";
  m.c_requests = reg.counter("wa_serve_requests_total" + label);
  m.c_samples = reg.counter("wa_serve_samples_total" + label);
  m.c_batches = reg.counter("wa_serve_batches_total" + label);
  m.c_failed = reg.counter("wa_serve_failed_total" + label);
  m.c_rejected = reg.counter("wa_serve_rejected_total" + label);
  m.g_depth = reg.gauge("wa_serve_queue_depth" + label);
  m.h_latency = reg.histogram("wa_serve_latency_ms" + label, latency_bounds_ms());
  m.lat_base = m.h_latency.snapshot();
}

void InferenceServer::remove_model(const std::string& name) {
  std::deque<Impl::Request> orphans;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto it = impl_->models.find(name);
    if (it == impl_->models.end()) {
      throw std::invalid_argument("InferenceServer: unknown model '" + name + "'");
    }
    it->second->removed = true;
    orphans.swap(it->second->queue);
    impl_->models.erase(it);
  }
  // Wake submitters blocked on the removed model's full queue (they observe
  // `removed` and throw) and workers whose pick may have raced the erase.
  impl_->space_cv.notify_all();
  impl_->work_cv.notify_all();
  // Complete the undispatched futures outside the lock: every accepted
  // request resolves, value or exception — never silently dropped.
  for (Impl::Request& r : orphans) {
    r.promise.set_exception(std::make_exception_ptr(std::runtime_error(
        "InferenceServer: model '" + name + "' was removed before the request ran")));
  }
}

void InferenceServer::load_model(const std::string& name, const std::string& wam_path) {
  add_model(name, load_pipeline(wam_path));
}

std::vector<std::string> InferenceServer::model_names() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->models.size());
  for (const auto& [name, m] : impl_->models) names.push_back(name);
  return names;
}

std::future<Tensor> InferenceServer::submit(const std::string& model, Tensor input) {
  return *impl_->enqueue(model, std::move(input), /*blocking=*/true);
}

std::optional<std::future<Tensor>> InferenceServer::try_submit(const std::string& model,
                                                               Tensor input) {
  return impl_->enqueue(model, std::move(input), /*blocking=*/false);
}

ModelStats InferenceServer::stats(const std::string& model) const {
  ModelStats s;
  telemetry::Histogram h_latency;
  telemetry::HistogramSnapshot lat_base;
  double lat_max_ms = 0.0;
  Clock::time_point first_submit{};
  bool saw_submit = false;
  {
    // Copy under the scheduler lock, merge the histogram stripes after
    // releasing it: a monitoring poll must not stall submitters and workers.
    std::lock_guard<std::mutex> lk(impl_->mu);
    auto it = impl_->models.find(model);
    if (it == impl_->models.end()) {
      throw std::invalid_argument("InferenceServer: unknown model '" + model + "'");
    }
    const Impl::ModelState& m = *it->second;
    s.requests = m.requests;
    s.samples = m.samples;
    s.batches = m.batches;
    s.failed = m.failed;
    s.rejected = m.rejected;
    s.queue_depth = m.queue.size();
    s.batch_size_hist = m.hist;
    s.peak_activation_bytes = m.peak_bytes;
    h_latency = m.h_latency;
    lat_base = m.lat_base;
    lat_max_ms = m.lat_max_ms;
    first_submit = m.first_submit;
    saw_submit = m.saw_submit;
  }
  // Quantiles from the registry histogram, windowed to this registration.
  // Monotone in q by construction, so p99 >= p95 >= p50 always holds.
  const telemetry::HistogramSnapshot lat = h_latency.snapshot().minus(lat_base);
  s.latency.p50_ms = lat.quantile(0.50);
  s.latency.p95_ms = lat.quantile(0.95);
  s.latency.p99_ms = lat.quantile(0.99);
  s.latency.mean_ms = lat.mean();
  s.latency.max_ms = lat_max_ms;
  if (saw_submit && s.samples > 0) {
    const double secs = std::chrono::duration<double>(Clock::now() - first_submit).count();
    if (secs > 0.0) s.samples_per_sec = static_cast<double>(s.samples) / secs;
  }
  return s;
}

void InferenceServer::shutdown() { impl_->shutdown(); }

void dump_metrics(std::ostream& os) {
  telemetry::write_prometheus(os, telemetry::Registry::global().snapshot());
}

}  // namespace wa::serve
